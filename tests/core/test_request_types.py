"""Direct tests for the request/reply types and small leftover surfaces."""

import pytest

from repro.core.request import (
    MemoryRequest,
    Operation,
    Reply,
    RequestState,
    StallEvent,
)
from repro.core.controller import read_request, write_request


class TestMemoryRequest:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            MemoryRequest(operation=Operation.WRITE, address=1)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(operation=Operation.READ, address=-1)

    def test_request_ids_are_unique_and_increasing(self):
        a = read_request(1)
        b = read_request(2)
        assert b.request_id > a.request_id

    def test_kind_predicates(self):
        assert read_request(0).is_read
        assert not read_request(0).is_write
        assert write_request(0, "x").is_write

    def test_fresh_request_state(self):
        request = read_request(5, tag="t")
        assert request.state is RequestState.PENDING
        assert request.issued_at is None
        assert request.due_at is None
        assert not request.merged


class TestReply:
    def test_latency_derived(self):
        reply = Reply(request_id=1, address=2, data=None, tag=None,
                      issued_at=10, completed_at=174)
        assert reply.latency == 164

    def test_frozen(self):
        reply = Reply(request_id=1, address=2, data=None, tag=None,
                      issued_at=0, completed_at=1)
        with pytest.raises(AttributeError):
            reply.data = "changed"


class TestStallEvent:
    def test_value_semantics(self):
        a = StallEvent(cycle=5, bank=2, reason="bank_queue", request_id=9)
        b = StallEvent(cycle=5, bank=2, reason="bank_queue", request_id=9)
        assert a == b


class TestRunnerRetryTail:
    def test_pending_request_retried_after_source_exhausts(self):
        """A request rejected on the stream's last item must still be
        retried to acceptance before the drain (the runner's tail-retry
        budget)."""
        from repro.core import VPNMConfig, VPNMController
        from repro.sim.runner import run_workload

        ctrl = VPNMController(
            VPNMConfig(banks=1, bank_latency=4, queue_depth=1, delay_rows=2,
                       bus_scaling=1.0, hash_latency=0, address_bits=16),
            seed=1,
        )
        # Two distinct reads to the single bank: the second is rejected
        # on its first offers and must win via the tail retry.
        result = run_workload(ctrl, [read_request(1), read_request(2)])
        assert result.accepted == 2
        assert result.retries > 0
        assert len(result.replies) == 2


class TestGF2PolynomialMod:
    def test_wrapper_mod_matches_function(self):
        from repro.hashing.galois import GF2Polynomial, polynomial_mod
        a, m = 0b110101, 0b1011
        assert (GF2Polynomial(a) % GF2Polynomial(m)).bits == \
            polynomial_mod(a, m)

    def test_degree_property(self):
        from repro.hashing.galois import GF2Polynomial
        assert GF2Polynomial(0).degree == -1
        assert GF2Polynomial(0b1000).degree == 3


class TestTimelineEdges:
    def test_pipeline_latency_none_before_completion(self):
        from repro.sim.tracing import RequestTimeline
        timeline = RequestTimeline(tag="x", address=1, bank=0)
        assert timeline.pipeline_latency is None
        timeline.accepted_at = 3
        assert timeline.pipeline_latency is None
        timeline.completed_at = 33
        assert timeline.pipeline_latency == 30
