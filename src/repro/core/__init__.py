"""The VPNM controller — the paper's primary contribution.

Quick start::

    from repro.core import VPNMConfig, VPNMController

    ctrl = VPNMController(VPNMConfig(banks=32, queue_depth=8))
    result = ctrl.read(0xDEAD)       # one interface cycle
    replies = ctrl.run_idle(ctrl.normalized_delay)
    assert replies[0].latency == ctrl.normalized_delay
"""

from repro.core.bank_controller import AcceptResult, BankController
from repro.core.bank_queue import BankAccessQueue, QueueEntry
from repro.core.bus import BusScheduler
from repro.core.config import PAPER_DESIGN_LADDER, VPNMConfig, paper_config
from repro.core.controller import (
    StepResult,
    VPNMController,
    read_request,
    write_request,
)
from repro.core.delay_line import CircularDelayBuffer
from repro.core.delay_storage import DelayStorageBuffer
from repro.core.exceptions import (
    CapacityError,
    ConfigurationError,
    SchedulingInvariantError,
    UnknownRequestError,
    VPNMError,
)
from repro.core.request import (
    MemoryRequest,
    Operation,
    Reply,
    RequestState,
    StallEvent,
)
from repro.core.stats import ControllerStats
from repro.core.write_buffer import WriteBuffer

__all__ = [
    "AcceptResult",
    "BankAccessQueue",
    "BankController",
    "BusScheduler",
    "CapacityError",
    "CircularDelayBuffer",
    "ConfigurationError",
    "ControllerStats",
    "DelayStorageBuffer",
    "MemoryRequest",
    "Operation",
    "PAPER_DESIGN_LADDER",
    "QueueEntry",
    "Reply",
    "RequestState",
    "SchedulingInvariantError",
    "StallEvent",
    "StepResult",
    "UnknownRequestError",
    "VPNMConfig",
    "VPNMController",
    "VPNMError",
    "WriteBuffer",
    "paper_config",
    "read_request",
    "write_request",
]
