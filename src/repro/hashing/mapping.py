"""Address → (bank, line) mapping: the HU block in the paper's Figure 2.

Every memory line (a ``line_bytes``-wide DRAM burst, 64 B in the paper's
packet-buffering configuration) is owned by exactly one bank.  The mapper
applies a keyed bijection to the line address and splits the permuted
value into a bank index (low bits) and an in-bank line index (high bits).

Using a *bijection* rather than a bare hash matters: two distinct
addresses must never alias to the same (bank, line) pair, otherwise the
controller would silently return the wrong data.  We permute the address
with Carter–Wegman ``a·x + b`` over GF(2^A), then set

    bank = xor_fold(permuted, bank_bits)      line = permuted >> bank_bits

The pair is injective: if two permuted words share the same ``line`` they
differ only in their low ``bank_bits``, and that difference XORs straight
through the fold, so their ``bank`` values differ.  Folding (instead of
taking low bits) also keeps strided address sequences spread across all
banks — see :mod:`repro.hashing.universal`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.hashing.universal import (
    CarterWegmanHash,
    LowBitsHash,
    UniversalHash,
    xor_fold,
)


@dataclass(frozen=True)
class BankMapping:
    """Where a line address landed: the bank and the line within the bank."""

    bank: int
    line: int


class AddressMapper:
    """Splits permuted line addresses into (bank, line) pairs.

    Parameters
    ----------
    address_bits:
        Width of a line address (the paper uses A-bit addresses in the
        delay storage buffer; 32 by default).
    banks:
        Number of banks B; must be a power of two so the bank index is a
        clean bit field.
    scheme:
        ``"carter-wegman"`` (default, the paper's universal mapping) or
        ``"low-bits"`` (the conventional-controller strawman).
    seed:
        Seeds the hash key draw; identical seeds give identical mappings.
    """

    def __init__(
        self,
        address_bits: int = 32,
        banks: int = 32,
        scheme: str = "carter-wegman",
        seed: Optional[int] = None,
    ):
        if banks < 1 or banks & (banks - 1):
            raise ValueError(f"banks must be a power of two, got {banks}")
        self.address_bits = address_bits
        self.banks = banks
        self.bank_bits = banks.bit_length() - 1
        if self.bank_bits > address_bits:
            raise ValueError("more bank bits than address bits")
        self.scheme = scheme
        if scheme == "carter-wegman":
            self._hash: UniversalHash = CarterWegmanHash(
                address_bits, max(self.bank_bits, 1), seed=seed
            )
        elif scheme == "low-bits":
            self._hash = LowBitsHash(address_bits, max(self.bank_bits, 1))
        else:
            raise ValueError(f"unknown mapping scheme: {scheme!r}")

    def rekey(self, seed: Optional[int] = None) -> None:
        """Draw a fresh mapping (the paper's once-a-day re-randomization).

        All data would need to be relocated after a rekey; callers that
        model that cost do so explicitly (see the ablation benches).
        """
        if seed is None:
            seed = random.getrandbits(64)
        self._hash.rekey(seed)

    def map(self, address: int) -> BankMapping:
        """Map a line address to its (bank, line) pair."""
        if not 0 <= address < (1 << self.address_bits):
            raise ValueError(
                f"address {address:#x} out of range for "
                f"{self.address_bits}-bit addresses"
            )
        if self.bank_bits == 0:
            return BankMapping(bank=0, line=address)
        if isinstance(self._hash, CarterWegmanHash):
            permuted = self._hash.permute(address)
            return BankMapping(
                bank=xor_fold(permuted, self.address_bits, self.bank_bits),
                line=permuted >> self.bank_bits,
            )
        # Strawman: the conventional controller's low-bit bank select.
        return BankMapping(
            bank=self._hash(address),
            line=address >> self.bank_bits,
        )

    def bank_of(self, address: int) -> int:
        """Convenience: just the bank index of an address."""
        return self.map(address).bank
