"""Simulation substrate: drivers, tracing, and the fast stall simulator.

- :func:`~repro.sim.runner.run_workload` / :func:`~repro.sim.runner.measure_stall_rate`
  drive any workload iterator through a :class:`~repro.core.VPNMController`.
- :func:`~repro.sim.tracing.trace_requests` / :func:`~repro.sim.tracing.render_gantt`
  capture per-request timelines and draw Figure-1-style charts.
- :class:`~repro.sim.fastsim.FastStallSimulator` reproduces the stall
  dynamics alone, for multi-million-cycle MTS validation runs.
- :class:`~repro.sim.batchsim.BatchStallSimulator` vectorizes those
  dynamics across many seeds at once;
  :class:`~repro.sim.batchrunner.BatchRunner` shards campaigns over
  processes with checkpoint/resume and binomial error bars.
- :class:`~repro.sim.campaign.SweepCampaign` orchestrates grids of
  checkpointed batch campaigns behind a resumable manifest — the
  empirical Figure 4/6 sweeps.
"""

from repro.sim.batchrunner import (
    BatchReport,
    BatchRunner,
    lane_seeds,
    lane_seeds_legacy,
)
from repro.sim.campaign import (
    CellSpec,
    SweepCampaign,
    fig4_grid,
    fig6_grid,
    load_grid,
)
from repro.sim.batchsim import (
    BatchRunResult,
    BatchStallSimulator,
    matched_bank_sequences,
)
from repro.sim.fastsim import FastRunResult, FastStallSimulator
from repro.sim.runner import (
    RunResult,
    StallMeasurement,
    measure_stall_rate,
    run_workload,
)
from repro.sim.tracing import RequestTimeline, render_gantt, trace_requests

__all__ = [
    "BatchReport",
    "BatchRunResult",
    "BatchRunner",
    "BatchStallSimulator",
    "CellSpec",
    "FastRunResult",
    "FastStallSimulator",
    "SweepCampaign",
    "fig4_grid",
    "fig6_grid",
    "lane_seeds",
    "lane_seeds_legacy",
    "load_grid",
    "matched_bank_sequences",
    "RequestTimeline",
    "RunResult",
    "StallMeasurement",
    "measure_stall_rate",
    "render_gantt",
    "run_workload",
    "trace_requests",
]
