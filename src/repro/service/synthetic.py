"""Deterministic synthetic tenant fleets for the memory service.

The service smoke tests, the ``repro serve`` CLI and the isolation
benchmark all drive the same loop: a fleet of seeded Bernoulli arrival
processes (one per tenant), each drawing addresses from either a
uniform stream or a single-bank oracle pool (the paper's worst-case
attacker, :class:`~repro.workloads.adversarial.SingleBankAdversary`).
Everything is seeded and cycle-driven, so a (fleet, seed, cycles)
triple fully determines the run — including every admission decision
and every emitted event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError
from repro.service.core import ServiceCore, ServiceReport
from repro.service.tenants import RateLike, TenantSpec
from repro.workloads.adversarial import SingleBankAdversary
from repro.workloads.tenant_mix import TenantTrace, mix_traces


@dataclass(frozen=True)
class SyntheticProfile:
    """How one tenant behaves: arrival intensity and address source.

    ``offered`` is the per-cycle submission probability (1.0 = a request
    every cycle — a hammering client); ``source`` is ``"uniform"`` or
    ``"single-bank"`` (oracle pool aimed at ``target_bank``, pool larger
    than D so the merging queue cannot defuse it).
    """

    name: str
    offered: float
    source: str = "uniform"
    target_bank: int = 0
    pool_size: int = 256

    def __post_init__(self) -> None:
        if not 0.0 <= self.offered <= 1.0:
            raise ConfigurationError("offered must be in [0, 1]")
        if self.source not in ("uniform", "single-bank"):
            raise ConfigurationError(f"unknown source {self.source!r}")


def synthetic_fleet(
    tenants: int = 8,
    adversaries: int = 1,
    benign_rate: RateLike = 0.15,
    benign_offered: float = 0.10,
    benign_burst: int = 16,
    benign_weight: int = 1,
    benign_slo_p99: Optional[int] = None,
    adversary_rate: RateLike = 0.05,
    adversary_offered: float = 1.0,
    adversary_burst: int = 8,
    adversary_weight: int = 1,
    queue_limit: int = 64,
    target_bank: int = 0,
    pool_size: int = 256,
) -> Tuple[List[TenantSpec], List[SyntheticProfile]]:
    """The standard experiment fleet: adversaries + benign tenants.

    Adversaries come first, at priority 0 (shed first), hammering
    ``target_bank`` at ``adversary_offered``; the remaining tenants are
    benign uniform traffic at priority 1.  Rates are the *contracts*
    admission control enforces (exact rationals like ``"1/10"`` are
    accepted); ``None`` disables a tenant's bucket.  Weights only
    matter under the WDRR/priority arbiters; ``benign_slo_p99`` puts an
    SLO contract (and the adaptive rate controller, when a rate is
    set) on every benign tenant.
    """
    if not 0 <= adversaries <= tenants:
        raise ConfigurationError("need 0 <= adversaries <= tenants")
    specs: List[TenantSpec] = []
    profiles: List[SyntheticProfile] = []
    for i in range(adversaries):
        name = f"attacker{i}"
        specs.append(TenantSpec(name=name, priority=0, rate=adversary_rate,
                                burst=adversary_burst,
                                weight=adversary_weight,
                                queue_limit=queue_limit))
        profiles.append(SyntheticProfile(name=name,
                                         offered=adversary_offered,
                                         source="single-bank",
                                         target_bank=target_bank,
                                         pool_size=pool_size))
    for i in range(adversaries, tenants):
        name = f"tenant{i}"
        specs.append(TenantSpec(name=name, priority=1, rate=benign_rate,
                                burst=benign_burst, weight=benign_weight,
                                slo_p99=benign_slo_p99,
                                queue_limit=queue_limit))
        profiles.append(SyntheticProfile(name=name, offered=benign_offered))
    return specs, profiles


def _address_source(core: ServiceCore, profile: SyntheticProfile,
                    seed: int) -> Callable[[], int]:
    tenant = core.tenant(profile.name)
    if profile.source == "single-bank":
        controller = core.controllers[tenant.controller_index]
        pool = SingleBankAdversary(
            controller.mapper,
            target_bank=profile.target_bank,
            pool_size=profile.pool_size,
        ).pool
        counter = [0]

        def next_address() -> int:
            address = pool[counter[0] % len(pool)]
            counter[0] += 1
            return address

        return next_address
    rng = random.Random(seed)
    bits = core.config.address_bits

    def next_uniform() -> int:
        return rng.getrandbits(bits)

    return next_uniform


def fleet_arrivals(
    core: ServiceCore,
    profiles: Sequence[SyntheticProfile],
    seed: int = 0,
) -> Callable[[], None]:
    """Build one cycle's worth of fleet submissions as a closure.

    Returns ``submit_cycle()``: each call flips every profiled tenant's
    seeded coin (in registration order — part of the deterministic
    interleave contract) and submits one read per heads.  Factored out
    of :func:`run_synthetic` so the CLI's ``--listen`` mode can drive
    the identical arrival process while also serving socket clients:
    same (fleet, seed, cycle count) -> same submissions either way.
    """
    ordered = sorted(profiles, key=lambda p: core.tenant(p.name).index)
    arrivals = [
        (p, random.Random(100003 * seed + 7919 * core.tenant(p.name).index),
         _address_source(core, p, 200003 * seed
                         + 104729 * core.tenant(p.name).index))
        for p in ordered
    ]

    def submit_cycle() -> None:
        for profile, rng, next_address in arrivals:
            if rng.random() < profile.offered:
                core.submit(profile.name, next_address())

    return submit_cycle


def run_synthetic(
    core: ServiceCore,
    profiles: Sequence[SyntheticProfile],
    cycles: int,
    seed: int = 0,
    finish: bool = True,
) -> ServiceReport:
    """Drive a synthetic fleet for ``cycles`` interface cycles.

    Per cycle, each profiled tenant flips its seeded coin and submits
    one read when it comes up heads; then the service ticks once.  With
    ``finish`` the service quiesces afterwards (all admitted requests
    resolve), so the returned report's ledgers are conservation-closed.
    """
    submit_cycle = fleet_arrivals(core, profiles, seed)
    for _ in range(cycles):
        submit_cycle()
        core.tick()
    return core.finish() if finish else core.report()


def uniform_trace(name: str, count: int, seed: int, address_bits: int,
                  weight: int = 1) -> TenantTrace:
    """A seeded uniform read trace for one tenant (fairness sweeps)."""
    from repro.core.controller import read_request

    rng = random.Random(seed)
    requests = [read_request(rng.getrandbits(address_bits))
                for _ in range(count)]
    return TenantTrace(name, requests, weight=weight)


def replay_mix(
    core: ServiceCore,
    traces: Iterable[TenantTrace],
    cycles: int,
    offered: float = 1.0,
    finish: bool = True,
) -> ServiceReport:
    """Replay a weighted tenant mix through the service.

    The per-tenant traces fold into one deterministic arrival stream by
    smooth weighted round robin (:func:`repro.workloads.tenant_mix.mix_traces`),
    which is then offered to the service at ``offered`` submissions per
    cycle with Fraction-exact pacing: each mixed request is submitted
    on its owner tenant's stream, and the service ticks once per cycle.
    Trace weights shape the *arrival* mix; what each tenant actually
    gets is the arbiter's call — exactly the gap the fairness sweep
    measures.
    """
    stream = mix_traces(list(traces), tag_owner=True)
    pace = Fraction(offered).limit_denominator(1_000_000)
    credit = Fraction(0)
    exhausted = False
    for _ in range(cycles):
        if not exhausted:
            credit += pace
            while credit >= 1:
                request = next(stream, None)
                if request is None:
                    exhausted = True
                    credit = Fraction(0)
                    break
                owner = request.tag[0]
                op = "read" if request.is_read else "write"
                core.submit(owner, request.address, op=op, data=request.data)
                credit -= 1
        core.tick()
    return core.finish() if finish else core.report()
