"""A DRAM device: a set of banks behind one shared data bus.

The device enforces the two structural hazards the paper's controller
must schedule around:

* a *bank conflict* — two accesses to the same bank closer together than
  ``L`` cycles (the second raises :class:`BankBusyError` if issued), and
* the *single bus* — at most one access may be issued per memory-bus
  cycle across all banks.

The round-robin bus scheduler in :mod:`repro.core.bus` guarantees both
by construction; the device checks them anyway so that any alternative
scheduler (e.g. the naive baseline) is kept honest.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.dram.bank import DRAMBank, ReadAccess
from repro.dram.timing import DRAMTiming


class BusConflictError(RuntimeError):
    """Two accesses were issued on the shared bus in the same cycle."""


class DRAMDevice:
    """``timing.banks`` DRAM banks behind one single-issue bus."""

    def __init__(self, timing: DRAMTiming):
        self.timing = timing
        # Stagger refresh windows across banks so they never all refresh
        # at once (standard per-bank refresh scheduling).
        stagger = (timing.refresh_interval // timing.banks
                   if timing.refresh_interval else 0)
        self.banks: List[DRAMBank] = [
            DRAMBank(
                index=i,
                access_cycles=timing.access_cycles,
                refresh_interval=timing.refresh_interval,
                refresh_cycles=timing.refresh_cycles,
                refresh_offset=i * stagger,
            )
            for i in range(timing.banks)
        ]
        self._last_issue_cycle: Optional[int] = None
        self.commands_issued = 0

    def _claim_bus(self, now: int) -> None:
        if self._last_issue_cycle is not None and now <= self._last_issue_cycle:
            if now == self._last_issue_cycle:
                raise BusConflictError(
                    f"two bus commands issued in cycle {now}"
                )
            raise BusConflictError(
                f"bus command at cycle {now} issued after cycle "
                f"{self._last_issue_cycle} (time ran backwards)"
            )
        self._last_issue_cycle = now
        self.commands_issued += 1

    def read(self, bank: int, line: int, now: int) -> ReadAccess:
        """Issue a read on the bus at cycle ``now``."""
        self._claim_bus(now)
        return self.banks[bank].issue_read(line, now)

    def write(self, bank: int, line: int, data: Any, now: int) -> int:
        """Issue a write on the bus at cycle ``now``; returns completion."""
        self._claim_bus(now)
        return self.banks[bank].issue_write(line, data, now)

    def bank_free_at(self, bank: int) -> int:
        """First cycle at which ``bank``'s current access completes.

        Does not account for refresh windows — use
        :meth:`bank_available` for can-issue-now checks.
        """
        return self.banks[bank].busy_until

    def bank_available(self, bank: int, now: int) -> bool:
        """Whether ``bank`` can start an access at bus cycle ``now``
        (free of both an in-flight access and a refresh window)."""
        return not self.banks[bank].is_busy(now)

    def total_accesses(self) -> int:
        """Reads plus writes issued across all banks."""
        return self.commands_issued

    def peak_bandwidth_gbps(self, transfer_bytes: int) -> float:
        """Peak bus bandwidth for a given per-access transfer size."""
        transfers_per_second = self.timing.clock_mhz * 1e6
        return transfers_per_second * transfer_bytes * 8 / 1e9

    def __repr__(self) -> str:
        return (
            f"DRAMDevice({self.timing.name}: {self.timing.banks} banks, "
            f"L={self.timing.access_cycles})"
        )
