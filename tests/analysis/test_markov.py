"""Tests for the Section 5.2 Markov chain analysis."""

import math

import numpy as np
import pytest

from repro.analysis.markov import (
    BankQueueChain,
    bank_queue_mts,
    build_transition_matrix,
)
from repro.core import VPNMConfig
from repro.sim.fastsim import FastStallSimulator


class TestChainConstruction:
    def test_figure5_shape(self):
        """Paper Figure 5: L=3, Q=2 gives states idle(0)..6 plus fail."""
        chain = BankQueueChain(banks=6, bank_latency=3, queue_depth=2)
        matrix = chain.transition_matrix()
        assert matrix.shape == (8, 8)

    def test_rows_are_stochastic(self):
        for params in [(6, 3, 2, 1.0), (32, 20, 8, 1.3), (4, 5, 3, 1.5)]:
            matrix = build_transition_matrix(*params)
            assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_fail_state_absorbing(self):
        matrix = build_transition_matrix(6, 3, 2, 1.0)
        assert matrix[-1, -1] == 1.0
        assert matrix[-1, :-1].sum() == 0.0

    def test_figure5_idle_transitions(self):
        """From idle: arrival (prob 1/B) adds L then drains 1 -> state
        L-1; otherwise stays idle."""
        B, L = 6, 3
        matrix = build_transition_matrix(B, L, 2, 1.0)
        assert matrix[0, L - 1] == pytest.approx(1 / B)
        assert matrix[0, 0] == pytest.approx(1 - 1 / B)

    def test_figure5_full_state_fails_on_arrival(self):
        """From the full state (QL), any arrival overflows."""
        B, L, Q = 6, 3, 2
        matrix = build_transition_matrix(B, L, Q, 1.0)
        full = Q * L
        assert matrix[full, -1] == pytest.approx(1 / B)
        assert matrix[full, full - 1] == pytest.approx(1 - 1 / B)

    def test_near_full_states_also_fail(self):
        """Arrival into any state with less than L headroom overflows."""
        B, L, Q = 6, 3, 2
        matrix = build_transition_matrix(B, L, Q, 1.0)
        for state in range(Q * L - L + 1, Q * L + 1):
            assert matrix[state, -1] == pytest.approx(1 / B)

    def test_fractional_scaling_splits_drain(self):
        chain = BankQueueChain(banks=4, bank_latency=3, queue_depth=2,
                               bus_scaling=1.5)
        matrix = chain.transition_matrix()
        # From a mid state with no arrival: half the mass drains 1,
        # half drains 2.
        assert matrix[4, 3] == pytest.approx(0.75 * 0.5)
        assert matrix[4, 2] == pytest.approx(0.75 * 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BankQueueChain(0, 3, 2)
        with pytest.raises(ValueError):
            BankQueueChain(4, 0, 2)
        with pytest.raises(ValueError):
            BankQueueChain(4, 3, 0)
        with pytest.raises(ValueError):
            BankQueueChain(4, 3, 2, bus_scaling=0.5)


class TestHittingTimes:
    def test_mean_vs_matrix_powering_agree(self):
        """The linear-solve mean must be consistent with the paper's
        M^t absorption curve: P(stall by mean) should be ~1-1/e for a
        geometric-ish absorption."""
        chain = BankQueueChain(banks=4, bank_latency=3, queue_depth=2)
        mean = chain.mean_time_to_stall()
        probability = chain.stall_probability_by(int(round(mean)))
        assert 0.45 < probability < 0.75  # 1 - 1/e = 0.632 for geometric

    def test_median_definition_matches_powering(self):
        """The ln2 x mean median approximates the exact 50% point."""
        chain = BankQueueChain(banks=4, bank_latency=3, queue_depth=2)
        median = chain.median_time_to_stall()
        probability = chain.stall_probability_by(int(round(median)))
        assert 0.35 < probability < 0.65

    def test_mts_grows_exponentially_with_q(self):
        """Figure 6's main claim for B >= 32."""
        values = [bank_queue_mts(32, 20, q, 1.3) for q in (4, 8, 12, 16)]
        ratios = [b / a for a, b in zip(values, values[1:])]
        assert all(r > 5 for r in ratios)
        assert values[-1] > values[0] * 1000

    def test_low_bank_counts_plateau(self):
        """Figure 6: B < 32 'can only provide a maximum MTS value of
        ~10^2 even for larger values of Q'."""
        b4 = bank_queue_mts(4, 20, 48, 1.3)
        b32 = bank_queue_mts(32, 20, 48, 1.3)
        assert b4 < 1e4
        assert b32 > 1e9

    def test_b64_at_least_as_good_as_b32(self):
        """Figure 6 shows B=32 and B=64 close together and far above
        B<32; in our chain B=64 is strictly better (halved arrival
        rate), and both sit orders of magnitude above B=16."""
        b16 = math.log10(bank_queue_mts(16, 20, 8, 1.3))
        b32 = math.log10(bank_queue_mts(32, 20, 8, 1.3))
        b64 = math.log10(bank_queue_mts(64, 20, 8, 1.3))
        assert b64 > b32 > b16
        assert b32 - b16 > 2.0

    def test_higher_r_improves_mts(self):
        low = bank_queue_mts(32, 20, 8, 1.0)
        high = bank_queue_mts(32, 20, 8, 1.5)
        assert high > low * 10

    def test_scope_conversion(self):
        bank = bank_queue_mts(8, 4, 2, 1.0, scope="bank")
        system = bank_queue_mts(8, 4, 2, 1.0, scope="system")
        assert system == pytest.approx(bank / 8)

    def test_kind_and_scope_validation(self):
        with pytest.raises(ValueError):
            bank_queue_mts(4, 3, 2, kind="mode")
        with pytest.raises(ValueError):
            bank_queue_mts(4, 3, 2, scope="galaxy")

    def test_per_cycle_stall_rate(self):
        chain = BankQueueChain(banks=4, bank_latency=3, queue_depth=2)
        assert chain.per_cycle_stall_rate() == pytest.approx(
            1 / chain.mean_time_to_stall()
        )

    def test_powering_validation(self):
        with pytest.raises(ValueError):
            BankQueueChain(4, 3, 2).stall_probability_by(-1)


class TestAgainstSimulation:
    """The chain must predict the simulator's stall rate to within the
    accuracy the paper claims for its own analysis (a small factor;
    the chain ignores bus contention between banks)."""

    @pytest.mark.parametrize("params", [
        dict(banks=4, bank_latency=8, queue_depth=2, bus_scaling=1.0),
        dict(banks=8, bank_latency=10, queue_depth=2, bus_scaling=1.3),
        dict(banks=8, bank_latency=12, queue_depth=3, bus_scaling=1.3),
    ])
    def test_chain_within_factor_four_of_simulation(self, params):
        config = VPNMConfig(hash_latency=0, delay_rows=4096, **params)
        result = FastStallSimulator(config, seed=7).run(2_000_000)
        assert result.stalls > 30, "config too mild to validate against"
        assert result.delay_storage_stalls == 0  # isolate queue stalls
        simulated = result.empirical_mts
        predicted = bank_queue_mts(
            params["banks"], params["bank_latency"], params["queue_depth"],
            params["bus_scaling"], kind="mean", scope="system",
        )
        assert predicted / 4 < simulated < predicted * 4, (
            f"simulated {simulated:.3g} vs predicted {predicted:.3g}"
        )
