"""Traced service runs: byte-determinism, zero perturbation, attribution.

Three contracts from DESIGN.md §14:

* two identical traced runs emit byte-identical JSONL modulo the
  ``timing`` envelope member (the same bar the campaign determinism
  test sets — tracing adds no wall clock and no RNG);
* tracing is observation only: with the tracer pointed at its own
  sink, the service's event stream and controller accounting are
  byte-for-byte what an untraced run produces, and the differential
  service-vs-serial-replay suite still passes with every request
  sampled;
* attribution closes: every sampled completed request's spans tile its
  latency exactly (residual 0), so the per-tenant report attributes
  100% of sampled end-to-end cycles (acceptance bound is >= 95%) and
  the p99 decomposition sums to the p99 request's latency.
"""

import json
import random

import pytest

from repro.core import VPNMConfig, VPNMController
from repro.core.controller import read_request
from repro.obs.events import JsonlEventSink, read_events
from repro.obs.trace import RequestTracer, attribution, trace_requests
from repro.service import ServiceCore, TenantSpec
from repro.service.synthetic import run_synthetic, synthetic_fleet
from repro.sim.runner import run_workload

SEED = 17

FLEET_CONFIG = dict(address_bits=16, banks=8, bank_latency=8,
                    queue_depth=4, delay_rows=32, hash_latency=0)


def traced_fleet_run(events_path, sample_every=8, cycles=1500):
    """One synthetic adversary/benign fleet run with tracing on."""
    specs, profiles = synthetic_fleet(tenants=4, adversaries=1,
                                      benign_offered=0.2)
    with JsonlEventSink(str(events_path)) as sink:
        tracer = RequestTracer(sink, sample_every=sample_every)
        core = ServiceCore(specs, config=VPNMConfig(**FLEET_CONFIG),
                           seed=SEED, events=sink, window=512,
                           tracer=tracer)
        run_synthetic(core, profiles, cycles=cycles, seed=3)
    return tracer


def stripped_lines(path):
    """Canonical lines with the (wall-clock) ``timing`` member removed."""
    out = []
    with open(path) as fh:
        for line in fh:
            event = json.loads(line)
            event.pop("timing", None)
            out.append(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")))
    return out


class TestByteDeterminism:
    def test_identical_traced_runs_are_byte_identical(self, tmp_path):
        tracer_a = traced_fleet_run(tmp_path / "a.jsonl")
        tracer_b = traced_fleet_run(tmp_path / "b.jsonl")
        assert tracer_a.emitted == tracer_b.emitted > 0
        lines_a = stripped_lines(tmp_path / "a.jsonl")
        assert lines_a == stripped_lines(tmp_path / "b.jsonl")
        # and the stream actually contains trace events, schema-valid.
        events = read_events(str(tmp_path / "a.jsonl"))
        assert any(e["type"] == "trace.span" for e in events)
        assert trace_requests(events, status="completed")

    def test_tracing_leaves_the_service_stream_untouched(self, tmp_path):
        """Tracer on its own sink: the service's events and accounting
        must be byte-for-byte those of an untraced run."""
        specs, profiles = synthetic_fleet(tenants=3, adversaries=1)

        def run(service_log, tracer):
            with JsonlEventSink(str(service_log)) as sink:
                core = ServiceCore(specs,
                                   config=VPNMConfig(**FLEET_CONFIG),
                                   seed=SEED, events=sink, window=256,
                                   tracer=tracer)
                run_synthetic(core, profiles, cycles=800, seed=5)
            return core.controllers[0].stats

        # every request sampled: the heaviest possible observation load
        with JsonlEventSink(str(tmp_path / "spans.jsonl")) as span_sink:
            traced = run(tmp_path / "traced.jsonl",
                         RequestTracer(span_sink, sample_every=1))
        untraced = run(tmp_path / "plain.jsonl", None)
        assert stripped_lines(tmp_path / "traced.jsonl") == \
            stripped_lines(tmp_path / "plain.jsonl")
        assert traced.reads_accepted == untraced.reads_accepted
        assert traced.stall_cycles == untraced.stall_cycles
        assert dict(traced.stall_reasons) == dict(untraced.stall_reasons)


DIFFERENTIAL_PARAMS = dict(banks=2, bank_latency=8, queue_depth=1,
                           delay_rows=64)


def make_drop_config():
    return VPNMConfig(address_bits=16, hash_latency=0, stall_policy="drop",
                      **DIFFERENTIAL_PARAMS)


@pytest.mark.parametrize("arbiter", ["round-robin", "wdrr"])
def test_differential_replay_with_tracing_on(arbiter):
    """The service-vs-serial-replay ledger identity survives full
    sampling (sample_every=1): tracing must not shift one offer."""
    specs = [TenantSpec(f"t{i}", burst=4, queue_limit=32,
                        weight=(i % 3) + 1) for i in range(4)]
    core = ServiceCore(specs, config=make_drop_config(), seed=SEED,
                       record_interleave=True, arbiter=arbiter,
                       tracer=RequestTracer(sample_every=1))
    rng = random.Random(99)
    for _ in range(600):
        for i in range(4):
            if rng.random() < 0.4:
                core.submit(f"t{i}", rng.getrandbits(16))
        core.tick()
    core.finish()
    service_stats = core.controllers[0].stats
    interleave = core.interleave[0]

    controller = VPNMController(make_drop_config(), seed=SEED)
    workload = [None if item is None else read_request(item[1])
                for item in interleave]
    run_workload(controller, workload, drain=True)

    assert service_stats.stalls > 0
    assert service_stats.reads_accepted == controller.stats.reads_accepted
    assert service_stats.reads_merged == controller.stats.reads_merged
    assert dict(service_stats.stall_reasons) == \
        dict(controller.stats.stall_reasons)
    assert service_stats.dropped_requests == \
        controller.stats.dropped_requests
    assert service_stats.stall_cycles == controller.stats.stall_cycles


class TestAttributionAcceptance:
    @pytest.fixture(scope="class")
    def events(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "events.jsonl"
        tracer = traced_fleet_run(path, sample_every=4, cycles=2000)
        assert tracer.emitted > 0
        return read_events(str(path))

    def test_every_sampled_completion_tiles_exactly(self, events):
        completed = trace_requests(events, status="completed")
        assert len(completed) >= 50
        assert all(e["residual"] == 0 for e in completed)
        for event in completed:
            assert sum(event["spans"].values()) == event["latency"]

    def test_report_attributes_at_least_95_percent(self, events):
        digest = attribution(events)
        # adversary and benign tenants both sampled
        assert "attacker0" in digest and "tenant1" in digest
        for entry in digest.values():
            assert entry["attributed"] >= 0.95
            assert entry["attributed"] == pytest.approx(1.0)
            assert entry["max_residual"] == 0

    def test_p99_decomposition_sums_to_the_p99_exactly(self, events):
        for entry in attribution(events).values():
            assert sum(entry["p99_spans"].values()) == entry["p99"]
            assert entry["p99_residual"] == 0

    def test_delay_storage_dominates_the_adversary_victim_bank(self, events):
        """The paper's story told by spans: under a single-bank hammer
        the sampled latency beyond D lives in bank_queue/delay_wait,
        not in unattributed residue."""
        digest = attribution(events)
        attacker = digest["attacker0"]
        assert attacker["critical"] in ("queue", "bank_queue", "delay_wait")
