"""Pluggable service-order arbitration for the multi-tenant multiplexer.

`ServiceCore` offers at most one queued request per controller per
interface cycle; an :class:`Arbiter` decides *whose*.  Three policies
(DESIGN.md §12):

* ``round-robin`` — the PR 6 order, bit-identical to the original
  ``ServiceCore._pick`` (the differential suite pins this): a single
  pointer that advances past the chosen tenant at pick time, so a
  tenant whose offer the controller rejects *yields* its turn and is
  retried one full rotation later.
* ``wdrr`` — weighted deficit round robin (Shreedhar & Varghese, via
  Sullivan et al.'s per-bank bandwidth regulation): each tenant carries
  a deficit counter topped up by ``weight * quantum`` credits whenever
  the rotation enters it, and is served while credit remains.  A
  backlogged tenant therefore receives service proportional to its
  weight instead of one slot per rotation, which is what keeps a
  heavy-but-compliant tenant from starving behind many light ones.
  A rejected offer burns the cycle but no credit, so a stalled tenant
  *keeps* its turn and retries — pinned by the arbitration-under-stall
  tests.
* ``priority`` — strict priority across ``TenantSpec.priority``
  classes (higher class always first), WDRR within each class.  Lower
  classes can starve under sustained high-class load by design; pair
  it with token-bucket contracts on the upper classes.

Deficit-counter invariants (asserted in ``tests/service/test_arbiter.py``):

* ``0 <= deficit[i]`` always; ``deficit[i] < 1 + weight_i * quantum``
  whenever tenant *i* is not the in-service tenant (credit is granted
  once per rotation entry and consumed to exhaustion before the
  rotation moves on).
* A tenant with an empty queue holds zero deficit (idle credit does
  not accumulate — the classic DRR anti-burst rule).
* Over any span in which a set of tenants stays backlogged, tenant
  *i*'s share of consumed slots is within one quantum of
  ``weight_i / sum(weights)`` — the fairness bound the Jain-index
  bench (`benchmarks/test_service_fairness.py`) measures end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError

#: Registry of arbiter kinds (the ``repro serve --arbiter`` choices).
ARBITER_KINDS = ("round-robin", "wdrr", "priority")


class Arbiter:
    """Interface: choose which tenant's queue head to offer this cycle.

    ``pick()`` returns a tenant with a non-empty queue (or None for an
    idle cycle); ``feedback(tenant, consumed)`` reports what the
    controller did with the offer — ``consumed=True`` means the queue
    head left the tenant's queue (accepted, or dropped under the drop
    policy), ``False`` means the offer stalled and stays queued.
    """

    name = "base"

    def __init__(self, tenants: Sequence):
        self.tenants = list(tenants)

    def pick(self):
        raise NotImplementedError

    def feedback(self, tenant, consumed: bool) -> None:
        pass


class RoundRobinArbiter(Arbiter):
    """PR 6's strict round robin, bit-identical to ``ServiceCore._pick``.

    The pointer advances past the chosen tenant *at pick time*, so a
    stalled offer costs the tenant its turn (it is retried next
    rotation).  ``feedback`` is deliberately a no-op.
    """

    name = "round-robin"

    def __init__(self, tenants: Sequence):
        super().__init__(tenants)
        self._pointer = 0

    def pick(self):
        tenants = self.tenants
        if not tenants:
            return None
        start = self._pointer
        for offset in range(len(tenants)):
            position = (start + offset) % len(tenants)
            tenant = tenants[position]
            if tenant.queue:
                self._pointer = (position + 1) % len(tenants)
                return tenant
        return None


class WeightedDeficitArbiter(Arbiter):
    """Weighted deficit round robin with unit-cost requests.

    Entering a backlogged tenant grants it ``weight * quantum`` credits;
    it is then served one request per cycle while credits remain (and
    keeps its turn across controller stalls — nothing was served, so no
    credit is spent).  An emptied queue forfeits leftover credit.
    """

    name = "wdrr"

    def __init__(self, tenants: Sequence, quantum: int = 1):
        super().__init__(tenants)
        if quantum < 1:
            raise ConfigurationError("quantum must be >= 1")
        self.quantum = quantum
        self._deficit: List[int] = [0] * len(self.tenants)
        # Start just *before* the first tenant so the first rotation
        # entry grants tenant 0 its quantum.
        self._pos = max(0, len(self.tenants) - 1)

    def _grant(self, position: int) -> int:
        return self.tenants[position].spec.weight * self.quantum

    def pick(self):
        tenants = self.tenants
        n = len(tenants)
        if n == 0:
            return None
        for _ in range(n + 1):
            current = tenants[self._pos]
            if current.queue and self._deficit[self._pos] >= 1:
                return current
            if not current.queue:
                # Idle tenants forfeit leftover credit (anti-burst).
                self._deficit[self._pos] = 0
            self._pos = (self._pos + 1) % n
            entered = tenants[self._pos]
            if entered.queue:
                self._deficit[self._pos] += self._grant(self._pos)
        return None

    def feedback(self, tenant, consumed: bool) -> None:
        if not consumed:
            return  # stalled offer: tenant keeps turn and credit
        position = self._pos
        if self.tenants[position] is not tenant:  # pragma: no cover
            raise ConfigurationError("feedback for a tenant not in service")
        self._deficit[position] -= 1
        if not tenant.queue:
            self._deficit[position] = 0

    def deficits(self) -> Dict[str, int]:
        """Current per-tenant deficit counters (tests + ``info`` op)."""
        return {t.spec.name: d for t, d in zip(self.tenants, self._deficit)}


class PriorityArbiter(Arbiter):
    """Strict priority across classes, WDRR within each class.

    The highest :attr:`TenantSpec.priority` class with any pending work
    is always served first; within a class, weighted deficit round
    robin (each class keeps its own rotation and deficit state, so a
    class resuming after a starved spell continues where it left off).
    """

    name = "priority"

    def __init__(self, tenants: Sequence, quantum: int = 1):
        super().__init__(tenants)
        classes = sorted({t.spec.priority for t in self.tenants},
                         reverse=True)
        self._classes = [
            WeightedDeficitArbiter(
                [t for t in self.tenants if t.spec.priority == cls],
                quantum=quantum)
            for cls in classes
        ]
        self._owner = {t.spec.name: sub
                       for sub in self._classes for t in sub.tenants}
        self._in_service: Optional[WeightedDeficitArbiter] = None

    def pick(self):
        for sub in self._classes:  # highest class first
            if any(t.queue for t in sub.tenants):
                self._in_service = sub
                return sub.pick()
        self._in_service = None
        return None

    def feedback(self, tenant, consumed: bool) -> None:
        self._owner[tenant.spec.name].feedback(tenant, consumed)


def make_arbiter(kind: str, tenants: Sequence, quantum: int = 1) -> Arbiter:
    """Build one controller's arbiter; ``kind`` from :data:`ARBITER_KINDS`."""
    if kind == "round-robin":
        return RoundRobinArbiter(tenants)
    if kind == "wdrr":
        return WeightedDeficitArbiter(tenants, quantum=quantum)
    if kind == "priority":
        return PriorityArbiter(tenants, quantum=quantum)
    raise ConfigurationError(
        f"unknown arbiter {kind!r} (choose from {ARBITER_KINDS})")


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index of normalized shares: ``(Σx)² / (n·Σx²)``.

    1.0 is perfectly fair (all normalized shares equal); ``1/n`` is a
    single tenant taking everything.  Callers normalize throughput by
    entitlement (``completed_i / weight_i``) before calling.
    """
    values = [float(s) for s in shares]
    if not values:
        raise ValueError("jain_index needs at least one share")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0  # everyone equally got nothing
    return (total * total) / (len(values) * squares)
