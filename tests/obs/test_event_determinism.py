"""Acceptance test: the event stream is deterministic given the seed.

Two fresh campaign runs with the same grid and seed must produce
byte-identical ``events.jsonl`` files once the ``timing`` sub-object —
the only envelope field allowed to carry wall-clock values — is
stripped from each line.
"""

import json

from repro.sim.campaign import SweepCampaign, fig4_grid


def run_campaign(root):
    cells = fig4_grid([2, 4], banks=4, queue_depth=4, bank_latency=4,
                      cycles=4000, lanes=4)
    campaign = SweepCampaign(str(root), cells=cells, seed=11,
                            shard_lanes=2, telemetry_stride=64)
    campaign.run()
    return campaign.event_log_path()


def stripped_lines(path):
    lines = []
    for line in open(path):
        event = json.loads(line)
        event.pop("timing", None)
        lines.append(json.dumps(event, sort_keys=True,
                                separators=(",", ":")))
    return lines


class TestEventDeterminism:
    def test_two_fresh_runs_are_byte_identical_modulo_timing(self, tmp_path):
        log_a = run_campaign(tmp_path / "a")
        log_b = run_campaign(tmp_path / "b")
        lines_a = stripped_lines(log_a)
        lines_b = stripped_lines(log_b)
        assert lines_a == lines_b
        # Sanity: the stream actually contains the full lifecycle.
        types = [json.loads(line)["type"] for line in lines_a]
        assert types[0] == "campaign_started"
        assert types.count("cell_finished") == 2
        assert types.count("shard_finished") == 4

    def test_timing_is_the_only_nondeterministic_field(self, tmp_path):
        """Raw (unstripped) lines may differ only inside ``timing``."""
        log_a = run_campaign(tmp_path / "a")
        log_b = run_campaign(tmp_path / "b")
        for raw_a, raw_b in zip(open(log_a), open(log_b)):
            event_a, event_b = json.loads(raw_a), json.loads(raw_b)
            keys_a = set(event_a) - {"timing"}
            keys_b = set(event_b) - {"timing"}
            assert keys_a == keys_b
            for key in keys_a:
                assert event_a[key] == event_b[key], key
