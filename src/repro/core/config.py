"""VPNM controller configuration (the parameters of paper Table 1).

===  =========================================================
 Q   number of entries in the bank access queue
 K   number of rows in the delay storage buffer
 B   number of banks in the system
 L   latency of accessing one bank (memory-bus cycles)
 D   delay to which all memory accesses are normalized
 R   frequency scaling ratio (memory bus over interface bus)
===  =========================================================

``D`` defaults to ``L * Q + hash_latency``: with a Q-deep bank access
queue, the worst backlog a newly accepted request can sit behind is
``Q - 1`` earlier accesses of ``L`` memory cycles each, plus its own
access; the round-robin bus drains a backlogged bank at one access per
``max(L, B)`` memory cycles, i.e. ``max(L, B) / R`` interface cycles per
access.  The constructor verifies that the configured ``D`` covers that
worst case so the deterministic-latency promise is structurally sound
(see :meth:`VPNMConfig.worst_case_completion`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class VPNMConfig:
    """Parameters of a virtually pipelined memory controller.

    The defaults are the paper's running example: 32 banks, L=20,
    R=1.3, Q=8, K=32 — the smallest Figure 4/6 configuration that
    reaches an MTS around 10^12.
    """

    banks: int = 32                  # B
    bank_latency: int = 20           # L, memory-bus cycles per bank access
    queue_depth: int = 8             # Q, bank access queue entries
    delay_rows: int = 32             # K, delay storage buffer rows
    bus_scaling: float = 1.3         # R, memory-bus over interface clock
    hash_latency: int = 4            # pipelined universal-hash stages
    normalized_delay: int = None     # D; computed from L*Q if omitted
    write_buffer_depth: int = None   # defaults to Q/2 (paper Section 4.3)
    address_bits: int = 32           # A, width of a line address
    counter_bits: int = None         # C; auto-sized to log2(D) if omitted
    data_bytes: int = 64             # W/8, data words per row (64 B cells)
    stall_policy: str = "stall"      # "stall" or "drop" (Section 4)
    hash_scheme: str = "carter-wegman"  # or "low-bits" for the strawman
    skip_idle_slots: bool = True     # work-conserving round robin
    delay_mode: str = "conservative"  # how a default D is derived; see below
    merge_reads: bool = True         # False disables the merging queue
    # (ablation ABL2: every redundant read then costs its own row and
    # bank access, as a design without the Section 3.4 machinery would)
    strict_latency: bool = False     # raise on a late reply instead of
    # counting it in stats.late_replies — for tests/experiments that
    # must fail fast on any deterministic-latency violation

    def __post_init__(self) -> None:
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise ConfigurationError(
                f"banks must be a power of two, got {self.banks}"
            )
        if self.bank_latency < 1:
            raise ConfigurationError("bank_latency (L) must be >= 1")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth (Q) must be >= 1")
        if self.delay_rows < 1:
            raise ConfigurationError("delay_rows (K) must be >= 1")
        if self.bus_scaling < 1.0:
            raise ConfigurationError(
                "bus_scaling (R) must be >= 1.0; the memory bus must not "
                "be slower than the interface"
            )
        if self.hash_latency < 0:
            raise ConfigurationError("hash_latency must be >= 0")
        if self.counter_bits is not None and self.counter_bits < 1:
            raise ConfigurationError("counter_bits (C) must be >= 1")
        if self.data_bytes < 1:
            raise ConfigurationError("data_bytes must be >= 1")
        if self.address_bits < 1:
            raise ConfigurationError("address_bits (A) must be >= 1")
        if self.stall_policy not in ("stall", "drop"):
            raise ConfigurationError(
                f"stall_policy must be 'stall' or 'drop', "
                f"got {self.stall_policy!r}"
            )
        if self.write_buffer_depth is None:
            # "we keep the write buffer equal to half of bank request
            # queue size" (Section 4.3); at least one entry.
            object.__setattr__(
                self, "write_buffer_depth", max(1, self.queue_depth // 2)
            )
        elif self.write_buffer_depth < 1:
            raise ConfigurationError("write_buffer_depth must be >= 1")
        if self.delay_mode not in ("conservative", "scaled"):
            raise ConfigurationError(
                f"delay_mode must be 'conservative' or 'scaled', "
                f"got {self.delay_mode!r}"
            )
        if self.normalized_delay is None:
            # "conservative": the paper's D = L*Q (their Figure 1 and the
            # 960 ns of Table 3), R-independent.  "scaled": the tightest
            # safe delay, D = ceil((Q+1)*L/R) — the worst case is Q
            # queued accesses draining at R transfers/cycle plus the last
            # access's own data return.  Table 2's R=1.4 rows beating its
            # R=1.3 rows at equal area implies the paper's analysis used
            # an R-dependent D of this kind.  Either default is bumped to
            # the provable bound when strict round robin (B > L, no slot
            # skipping) makes it insufficient.
            if self.delay_mode == "conservative":
                base = self.bank_latency * self.queue_depth
            else:
                base = math.ceil(
                    (self.queue_depth + 1) * self.bank_latency
                    / self.bus_scaling
                )
            object.__setattr__(
                self,
                "normalized_delay",
                max(base + self.hash_latency, self.worst_case_completion()),
            )
        if self.counter_bits is None:
            # The most requesters that can reference one row is one per
            # interface cycle over the row's D-cycle lifetime, so C =
            # ceil(log2(D + 1)) never saturates.  A smaller explicit C is
            # honored; saturation then stalls (counted as delay_storage).
            object.__setattr__(
                self,
                "counter_bits",
                max(1, self.normalized_delay.bit_length()),
            )
        if self.normalized_delay < self.worst_case_completion():
            raise ConfigurationError(
                f"normalized_delay D={self.normalized_delay} cannot cover "
                f"the worst-case completion time "
                f"{self.worst_case_completion()} for Q={self.queue_depth}, "
                f"L={self.bank_latency}, B={self.banks}, R={self.bus_scaling}"
            )
        if self.delay_rows > (1 << self.address_bits):
            raise ConfigurationError("more delay rows than addresses")

    def worst_case_completion(self) -> int:
        """Interface cycles from acceptance to data-ready, worst case.

        A request accepted into a full-but-one bank access queue waits for
        ``Q - 1`` predecessors plus its own access.  With work-conserving
        arbitration (``skip_idle_slots=True``, the paper's "with further
        analysis or a split-bus architecture this inefficiency can be
        eliminated") a backlogged bank is re-granted every ``L`` memory
        cycles, so the drain takes ``Q * L / R`` interface cycles.  Under
        strict round robin the grant period is ``max(L, B)`` instead.
        The hash pipeline sits in front of either.

        The paper's ``D = L * Q`` satisfies the work-conserving bound for
        any ``R >= 1``, with ``(1 - 1/R) * L * Q`` cycles of slack left to
        absorb transient bus contention between backlogged banks; the
        simulator still verifies data-readiness at every reply and counts
        violations (none are observed — see tests/core/test_invariants).
        """
        grant_period = (
            self.bank_latency
            if self.skip_idle_slots
            else max(self.bank_latency, self.banks)
        )
        drain = math.ceil(self.queue_depth * grant_period / self.bus_scaling)
        return drain + self.hash_latency

    @property
    def interleaved_capacity(self) -> int:
        """Q: how many overlapping bank accesses can be absorbed un-stalled."""
        return self.queue_depth

    @property
    def bank_bits(self) -> int:
        """Bits needed to name a bank."""
        return self.banks.bit_length() - 1

    @property
    def row_id_bits(self) -> int:
        """log2(K) rounded up: width of a delay-storage row id."""
        return max(1, (self.delay_rows - 1).bit_length())

    def delay_ns(self, interface_clock_mhz: float) -> float:
        """The normalized delay D in nanoseconds at a given clock.

        The paper: "we find that normalizing D to 1000 nanoseconds is
        more than enough, ... several orders of magnitude less than a
        typical router latency of 2 milliseconds."
        """
        if interface_clock_mhz <= 0:
            raise ConfigurationError("clock must be positive")
        return self.normalized_delay * 1000.0 / interface_clock_mhz


#: The paper's Table 2 Pareto-optimal design points for R=1.3 and R=1.4
#: (B, Q, K triples).  The last R=1.3 row prints K=8 in the paper, an
#: obvious typo for K=128 given the K=2Q ladder of every other row; we
#: encode 128 and note the substitution in EXPERIMENTS.md.
PAPER_DESIGN_LADDER = (
    {"banks": 32, "queue_depth": 24, "delay_rows": 48},
    {"banks": 32, "queue_depth": 32, "delay_rows": 64},
    {"banks": 32, "queue_depth": 48, "delay_rows": 96},
    {"banks": 32, "queue_depth": 64, "delay_rows": 128},
)


def paper_config(point: int = 0, bus_scaling: float = 1.3, **overrides) -> VPNMConfig:
    """A :class:`VPNMConfig` at one of the paper's Table 2 design points.

    ``point`` indexes :data:`PAPER_DESIGN_LADDER` (0 = smallest).  Extra
    keyword arguments override any field.
    """
    if not 0 <= point < len(PAPER_DESIGN_LADDER):
        raise ConfigurationError(
            f"point must be in [0, {len(PAPER_DESIGN_LADDER)}), got {point}"
        )
    params = dict(PAPER_DESIGN_LADDER[point])
    params["bus_scaling"] = bus_scaling
    params.update(overrides)
    return VPNMConfig(**params)
