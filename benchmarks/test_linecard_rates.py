"""EXT6 — measured line-rate crossover.

Table 3's 160 gbps is an accounting claim; this bench *measures* the
sustained/saturated crossover by playing the same packet trace through
a full line-card co-simulation (wire-rate arrivals + egress scheduler +
the one-request-per-cycle memory engine) at increasing rates.  The
crossover must land where the accounting predicts: between OC-3072
(160 gbps, comfortably sustained) and the 256 gbps raw bound.
"""

from repro.apps.linecard import LineCard
from repro.apps.packet_buffer import VPNMPacketBuffer
from repro.core import VPNMConfig, VPNMController
from repro.workloads.packets import packet_trace

from _report import report

RATES = [80, 160, 240, 320, 400]
PACKETS = 300


def run_all():
    results = {}
    for rate in RATES:
        controller = VPNMController(
            VPNMConfig(banks=32, queue_depth=8, delay_rows=32,
                       hash_latency=0),
            seed=7,
        )
        buffer = VPNMPacketBuffer(controller, num_queues=64,
                                  cells_per_queue=4096)
        card = LineCard(buffer, line_rate_gbps=rate)
        results[rate] = card.run(packet_trace(count=PACKETS, flows=64,
                                              seed=3))
    return results


def test_linecard_rates(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # OC-3072 sustained with zero stalls; the paper's operating point.
    assert results[160].sustained()
    assert results[160].stalls == 0
    # Everything below it, too.
    assert results[80].sustained()
    # Beyond the accounting bound the backlog diverges.
    assert not results[320].sustained()
    assert not results[400].sustained()
    # Goodput saturates near the bound regardless of offered rate.
    assert results[400].achieved_gbps(1000.0) < 280
    # Backlog is monotone in offered rate.
    backlogs = [results[rate].max_backlog for rate in RATES]
    assert backlogs == sorted(backlogs)

    lines = [f"{PACKETS}-packet trimodal trace, 64 queues, B=32 buffer, "
             "1 GHz interface",
             f"{'rate':>6} {'achieved':>9} {'max backlog':>12} "
             f"{'sustained':>10} {'stalls':>7}"]
    for rate in RATES:
        r = results[rate]
        lines.append(f"{rate:>6} {r.achieved_gbps(1000.0):>8.0f}g "
                     f"{r.max_backlog:>12} {str(r.sustained()):>10} "
                     f"{r.stalls:>7}")
    lines.append("\ncrossover sits between 240 and 320 gbps — the "
                 "64 B-cell accounting bound (256 gbps) measured.")
    report("linecard_rates", "\n".join(lines))
