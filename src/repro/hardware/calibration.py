"""Calibration of the hardware model to the paper's published outputs.

Anchors (0.13 µm CMOS):

* "one bank controller ... with L = 20, K = 24, and Q = 12, occupies
  0.15 mm²" (Section 5.3.1);
* Table 2's four R=1.3 design points: total area over 32 controllers of
  13.6 / 19.4 / 34.1 / 53.2 mm² and per-access energy of 11.09 / 13.26 /
  17.05 / 21.51 nJ for (Q, K) = (24,48), (32,64), (48,96), (64,128).

Model forms (chosen for fit quality over the anchors):

* area per controller = ``scale * total_bits ** gamma`` — a power law,
  max |error| ≈ 4% over the five anchors (a pure linear model misses the
  0.15 mm² point by 33% because decoder/wiring overhead grows
  superlinearly, which is also what Cacti reports);
* energy per access = ``slope * total_bits + intercept`` — linear,
  max |error| ≈ 1.5%.

Both fits are computed at import time from the anchor table by least
squares (deterministic; no stored magic constants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import VPNMConfig
from repro.hardware.bits import controller_bits

#: (queue_depth Q, delay_rows K, per-controller area mm^2) at 0.13um.
#: First row is the Section 5.3.1 reference controller; the rest are
#: Table 2 totals divided by their 32 controllers.
AREA_ANCHORS: Tuple[Tuple[int, int, float], ...] = (
    (12, 24, 0.15),
    (24, 48, 13.6 / 32),
    (32, 64, 19.4 / 32),
    (48, 96, 34.1 / 32),
    (64, 128, 53.2 / 32),
)

#: (queue_depth Q, delay_rows K, energy nJ) — Table 2, R = 1.3 rows.
ENERGY_ANCHORS: Tuple[Tuple[int, int, float], ...] = (
    (24, 48, 11.09),
    (32, 64, 13.26),
    (48, 96, 17.05),
    (64, 128, 21.51),
)

#: Technology node the anchors were reported at.
REFERENCE_TECH_UM = 0.13


def _anchor_bits(queue_depth: int, delay_rows: int) -> int:
    """Total storage bits of an anchor configuration (L=20, W=64 B)."""
    config = VPNMConfig(
        banks=32,
        bank_latency=20,
        queue_depth=queue_depth,
        delay_rows=delay_rows,
        hash_latency=0,
    )
    return controller_bits(config).total_bits


@dataclass(frozen=True)
class AreaFit:
    """``area_mm2 = scale * bits ** gamma`` at the reference tech node."""

    scale: float
    gamma: float

    def area_mm2(self, bits: int) -> float:
        if bits <= 0:
            return 0.0
        return self.scale * bits ** self.gamma


@dataclass(frozen=True)
class EnergyFit:
    """``energy_nj = slope * bits + intercept`` at the reference node."""

    slope: float
    intercept: float

    def energy_nj(self, bits: int) -> float:
        return self.slope * max(0, bits) + self.intercept


def fit_area_model() -> AreaFit:
    """Least-squares power-law fit of area to total bits over the anchors."""
    log_bits = []
    log_area = []
    for queue_depth, delay_rows, area in AREA_ANCHORS:
        log_bits.append(math.log(_anchor_bits(queue_depth, delay_rows)))
        log_area.append(math.log(area))
    design = np.vstack([log_bits, np.ones(len(log_bits))]).T
    gamma, log_scale = np.linalg.lstsq(design, np.array(log_area),
                                       rcond=None)[0]
    return AreaFit(scale=float(math.exp(log_scale)), gamma=float(gamma))


def fit_energy_model() -> EnergyFit:
    """Least-squares linear fit of per-access energy over the anchors."""
    bits = []
    energy = []
    for queue_depth, delay_rows, value in ENERGY_ANCHORS:
        bits.append(_anchor_bits(queue_depth, delay_rows))
        energy.append(value)
    design = np.vstack([bits, np.ones(len(bits))]).T
    slope, intercept = np.linalg.lstsq(design, np.array(energy),
                                       rcond=None)[0]
    return EnergyFit(slope=float(slope), intercept=float(intercept))


def calibration_report() -> List[str]:
    """Human-readable residuals of both fits (used by EXPERIMENTS.md)."""
    area_fit = fit_area_model()
    energy_fit = fit_energy_model()
    lines = ["Area fit (power law):"]
    for queue_depth, delay_rows, actual in AREA_ANCHORS:
        predicted = area_fit.area_mm2(_anchor_bits(queue_depth, delay_rows))
        lines.append(
            f"  Q={queue_depth:3d} K={delay_rows:3d}: "
            f"model {predicted:.3f} mm2, paper {actual:.3f} mm2 "
            f"({100 * (predicted / actual - 1):+.1f}%)"
        )
    lines.append("Energy fit (linear):")
    for queue_depth, delay_rows, actual in ENERGY_ANCHORS:
        predicted = energy_fit.energy_nj(
            _anchor_bits(queue_depth, delay_rows)
        )
        lines.append(
            f"  Q={queue_depth:3d} K={delay_rows:3d}: "
            f"model {predicted:.2f} nJ, paper {actual:.2f} nJ "
            f"({100 * (predicted / actual - 1):+.1f}%)"
        )
    return lines
