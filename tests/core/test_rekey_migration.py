"""Tests for rekey-with-migration (the paper's key-leak mitigation)."""

import random

import pytest

from repro.core import VPNMConfig, VPNMController, read_request, write_request
from repro.core.exceptions import VPNMError


def small_controller(**overrides):
    params = dict(banks=4, bank_latency=4, queue_depth=4, delay_rows=8,
                  bus_scaling=1.0, hash_latency=0, address_bits=16)
    params.update(overrides)
    return VPNMController(VPNMConfig(**params), seed=1)


class TestRekeyWithMigration:
    def write_data(self, ctrl, count=24, seed=0):
        rng = random.Random(seed)
        data = {}
        while len(data) < count:
            address = rng.getrandbits(16)
            data[address] = f"value-{address}"
        for address, value in data.items():
            while not ctrl.step(write_request(address, value)).accepted:
                pass
        ctrl.drain()
        return data

    def read_back(self, ctrl, addresses):
        replies = []
        for address in addresses:
            while True:
                result = ctrl.step(read_request(address, tag=address))
                replies.extend(result.replies)
                if result.accepted:
                    break
        replies.extend(ctrl.drain())
        return {r.tag: r.data for r in replies}

    def test_data_survives_migration(self):
        ctrl = small_controller()
        data = self.write_data(ctrl)
        ctrl.rekey_with_migration(seed=99)
        assert self.read_back(ctrl, list(data)) == data

    def test_mapping_actually_changes(self):
        ctrl = small_controller()
        self.write_data(ctrl)
        before = [ctrl.mapper.bank_of(a) for a in range(256)]
        ctrl.rekey_with_migration(seed=77)
        assert [ctrl.mapper.bank_of(a) for a in range(256)] != before

    def test_downtime_charged(self):
        ctrl = small_controller()
        data = self.write_data(ctrl, count=10)
        clock_before = ctrl.now
        downtime = ctrl.rekey_with_migration(seed=5)
        assert downtime > 0
        assert ctrl.now == clock_before + downtime
        # Serial read+write per line at the grant period.
        grant = max(ctrl.config.bank_latency, ctrl.config.banks)
        assert downtime == 2 * len(data) * grant

    def test_requires_drained_controller(self):
        ctrl = small_controller()
        ctrl.step(read_request(1))
        with pytest.raises(VPNMError):
            ctrl.rekey_with_migration(seed=1)

    def test_migration_of_empty_memory_is_free(self):
        ctrl = small_controller()
        assert ctrl.rekey_with_migration(seed=3) == 0

    def test_repeated_migrations(self):
        ctrl = small_controller()
        data = self.write_data(ctrl, count=8)
        for seed in (1, 2, 3):
            ctrl.rekey_with_migration(seed=seed)
        assert self.read_back(ctrl, list(data)) == data

    def test_low_bits_scheme_migratable_too(self):
        ctrl = small_controller(hash_scheme="low-bits")
        data = self.write_data(ctrl, count=8)
        ctrl.rekey_with_migration(seed=9)  # rekey is a no-op mapping-wise
        assert self.read_back(ctrl, list(data)) == data

    def test_migration_then_new_traffic(self):
        """Post-migration, the controller keeps its contract."""
        ctrl = small_controller()
        data = self.write_data(ctrl, count=12)
        ctrl.rekey_with_migration(seed=11)
        d = ctrl.normalized_delay
        result = ctrl.step(read_request(next(iter(data)), tag="after"))
        assert result.accepted
        replies = ctrl.drain()
        assert replies[0].latency == d
