"""Tests for bit counting and the calibrated hardware model."""

import pytest

from repro.core import VPNMConfig, paper_config
from repro.hardware.bits import controller_bits, total_controller_bytes
from repro.hardware.calibration import (
    AREA_ANCHORS,
    ENERGY_ANCHORS,
    calibration_report,
    fit_area_model,
    fit_energy_model,
)
from repro.hardware.model import HardwareModel


class TestControllerBits:
    def test_structure_split_sums_to_total(self):
        bits = controller_bits(VPNMConfig(hash_latency=0))
        assert bits.total_bits == bits.cam_bits + bits.sram_bits
        assert (bits.delay_storage_bits + bits.bank_queue_bits
                + bits.write_buffer_bits + bits.circular_buffer_bits
                ) == bits.total_bits

    def test_hand_computed_small_config(self):
        # K=4 rows, Q=2, L=4 -> D=8, A=16, C auto->4 bits (D=8), W=8 bytes
        cfg = VPNMConfig(banks=4, bank_latency=4, queue_depth=2,
                         delay_rows=4, hash_latency=0, address_bits=16,
                         data_bytes=8)
        bits = controller_bits(cfg)
        assert bits.cam_bits == 4 * 16
        # delay storage SRAM: 4 * (1 valid + 4 counter + 64 data)
        assert cfg.counter_bits == 4
        row_id = cfg.row_id_bits  # log2(4) = 2
        assert row_id == 2
        assert bits.bank_queue_bits == 2 * (1 + row_id)
        assert bits.write_buffer_bits == 1 * (16 + 64)
        assert bits.circular_buffer_bits == 8 * (1 + row_id)

    def test_bits_grow_with_every_parameter(self):
        base = controller_bits(VPNMConfig(hash_latency=0))
        assert controller_bits(
            VPNMConfig(delay_rows=64, hash_latency=0)).total_bits > base.total_bits
        assert controller_bits(
            VPNMConfig(queue_depth=16, hash_latency=0)).total_bits > base.total_bits
        assert controller_bits(
            VPNMConfig(data_bytes=128, hash_latency=0)).total_bits > base.total_bits

    def test_total_controller_bytes_scales_with_banks(self):
        small = total_controller_bytes(VPNMConfig(banks=16, hash_latency=0))
        large = total_controller_bytes(VPNMConfig(banks=32, hash_latency=0))
        assert large == pytest.approx(small * 2)


class TestCalibration:
    def test_area_fit_hits_all_anchors_within_5_percent(self):
        fit = fit_area_model()
        from repro.hardware.calibration import _anchor_bits
        for queue_depth, delay_rows, expected in AREA_ANCHORS:
            predicted = fit.area_mm2(_anchor_bits(queue_depth, delay_rows))
            assert predicted == pytest.approx(expected, rel=0.05)

    def test_energy_fit_hits_all_anchors_within_2_percent(self):
        fit = fit_energy_model()
        from repro.hardware.calibration import _anchor_bits
        for queue_depth, delay_rows, expected in ENERGY_ANCHORS:
            predicted = fit.energy_nj(_anchor_bits(queue_depth, delay_rows))
            assert predicted == pytest.approx(expected, rel=0.02)

    def test_area_superlinearity(self):
        """Cacti-style: area grows faster than storage (decoders, wires)."""
        fit = fit_area_model()
        assert 1.0 < fit.gamma < 2.0

    def test_report_renders(self):
        report = "\n".join(calibration_report())
        assert "Area fit" in report and "Energy fit" in report
        assert "%" in report


class TestHardwareModel:
    def test_reference_controller_area(self):
        """Section 5.3.1: L=20, K=24, Q=12 controller ~ 0.15 mm2."""
        model = HardwareModel()
        cfg = VPNMConfig(banks=32, bank_latency=20, queue_depth=12,
                         delay_rows=24, hash_latency=0)
        assert model.controller_area_mm2(cfg) == pytest.approx(0.15, rel=0.05)

    def test_table2_totals(self):
        """Paper Table 2 R=1.3 areas: 13.6 / 19.4 / 34.1 / 53.2 mm2."""
        model = HardwareModel()
        expected = [13.6, 19.4, 34.1, 53.2]
        for point, value in zip(range(4), expected):
            cfg = paper_config(point, hash_latency=0)
            assert model.total_area_mm2(cfg) == pytest.approx(value, rel=0.06)

    def test_table2_energy(self):
        """Paper Table 2 R=1.3 energies: 11.09 / 13.26 / 17.05 / 21.51 nJ."""
        model = HardwareModel()
        expected = [11.09, 13.26, 17.05, 21.51]
        for point, value in zip(range(4), expected):
            cfg = paper_config(point, hash_latency=0)
            assert model.energy_per_access_nj(cfg) == pytest.approx(
                value, rel=0.03
            )

    def test_tech_scaling(self):
        cfg = VPNMConfig(hash_latency=0)
        at_130nm = HardwareModel(0.13).total_area_mm2(cfg)
        at_65nm = HardwareModel(0.065).total_area_mm2(cfg)
        assert at_65nm == pytest.approx(at_130nm / 4)
        e_130 = HardwareModel(0.13).energy_per_access_nj(cfg)
        e_65 = HardwareModel(0.065).energy_per_access_nj(cfg)
        assert e_65 == pytest.approx(e_130 / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareModel(0)

    def test_estimate_consistency(self):
        model = HardwareModel()
        cfg = VPNMConfig(hash_latency=0)
        estimate = model.estimate(cfg)
        assert estimate.total_area_mm2 == pytest.approx(
            estimate.controller_area_mm2 * cfg.banks
        )
        assert estimate.sram_kilobytes > 0

    def test_energy_of_run_scales_with_bank_accesses(self):
        from repro.core import VPNMController, read_request
        model = HardwareModel()
        cfg = VPNMConfig(hash_latency=0)
        ctrl = VPNMController(cfg, seed=1)
        for address in range(50):
            ctrl.step(read_request(address))
        ctrl.drain()
        energy = model.energy_of_run_uj(cfg, ctrl.stats)
        expected = model.energy_per_access_nj(cfg) * 50 / 1000.0
        assert energy == pytest.approx(expected)

    def test_merged_reads_cost_no_access_energy(self):
        from repro.core import VPNMController, read_request
        model = HardwareModel()
        cfg = VPNMConfig(hash_latency=0)
        ctrl = VPNMController(cfg, seed=1)
        for _ in range(50):
            ctrl.step(read_request(0xAB))  # all merge into one access
        ctrl.drain()
        energy = model.energy_of_run_uj(cfg, ctrl.stats)
        assert energy == pytest.approx(
            model.energy_per_access_nj(cfg) / 1000.0
        )
