"""FIG1 — latency-normalization timelines (paper Figure 1).

Regenerates the paper's three scenarios on a single bank controller with
D=30, L=15 (Q = D/L = 2): typical operation, the redundant-request
short-cut, and the bank-overload stall.
"""

from repro.core import VPNMConfig, VPNMController, read_request
from repro.sim.tracing import render_gantt, trace_requests

from _report import report


def figure1_controller():
    return VPNMController(
        VPNMConfig(banks=1, bank_latency=15, queue_depth=2, delay_rows=4,
                   bus_scaling=1.0, hash_latency=0, address_bits=16,
                   stall_policy="drop"),
        seed=0,
    )


def scenario(requests):
    ctrl = figure1_controller()
    timelines = trace_requests(ctrl, requests)
    return timelines, render_gantt(timelines)


def run_all():
    sections = []
    # Left panel: typical operating mode.
    timelines, art = scenario(
        [read_request(0xA, tag="A"), read_request(0xB, tag="B")]
    )
    assert all(t.pipeline_latency == 30 for t in timelines)
    assert timelines[1].issue_slot >= timelines[0].ready_slot
    sections.append("typical operating mode (D=30, L=15):\n" + art)

    # Middle panel: short-cut (redundant) accesses.
    timelines, art = scenario(
        [read_request(0xA, tag="A"), read_request(0xB, tag="B"),
         read_request(0xA, tag="A'"), read_request(0xA, tag="A''")]
    )
    merged = [t for t in timelines if t.merged]
    assert len(merged) == 2
    assert all(t.issue_slot is None for t in merged)
    assert all(t.pipeline_latency == 30 for t in timelines)
    sections.append("short-cut accesses (A repeated):\n" + art)

    # Right panel: bank overload stall (A..E swamp Q=2).
    requests = [read_request(0xA + i, tag=chr(ord("A") + i))
                for i in range(5)]
    timelines, art = scenario(requests)
    stalled = [t for t in timelines if t.stalled]
    completed = [t for t in timelines if t.completed_at is not None]
    assert stalled, "the overload panel must show a stall"
    assert all(t.pipeline_latency == 30 for t in completed)
    sections.append("bank overload stall (requests A-E):\n" + art)
    return "\n\n".join(sections)


def test_fig1_timelines(benchmark):
    text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("fig1_timelines", text)
