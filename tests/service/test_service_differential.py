"""Differential test: multiplexed service vs serial replay.

N tenants multiplexed through :class:`~repro.service.ServiceCore` under
a fixed deterministic interleave must produce controller stall/drop
accounting identical to the *same* interleave replayed serially through
``sim/runner.py`` on a fresh controller with the same seed.  This is
the service-layer extension of the ``test_runner_accounting`` ledger
idiom: the multiplexer may reorder which tenant goes first, but once
the per-cycle offer sequence is fixed, the controller must not be able
to tell the service and the plain runner apart.

The service records its offer sequence via ``record_interleave``; the
replay feeds exactly that sequence (one item per cycle, ``None`` for
idle) to ``run_workload`` under the drop policy, where offer streams
map 1:1 onto cycles on both sides.
"""

import random

import pytest

from repro.core import VPNMConfig, VPNMController
from repro.core.controller import read_request
from repro.service import ServiceCore, TenantSpec
from repro.sim.runner import run_workload

SEED = 17

CONFIGS = [
    (dict(banks=2, bank_latency=8, queue_depth=1, delay_rows=64),
     "bank-queue-bound"),
    (dict(banks=2, bank_latency=2, queue_depth=8, delay_rows=2),
     "delay-storage-bound"),
    (dict(banks=4, bank_latency=4, queue_depth=3, delay_rows=6),
     "mixed"),
]


def make_config(params):
    return VPNMConfig(address_bits=16, hash_latency=0,
                      stall_policy="drop", **params)


def drive_service(params, tenants=4, cycles=600, admission=False,
                  arbiter="round-robin"):
    """Scripted multi-tenant run; returns (stats, recorded interleave)."""
    specs = [
        TenantSpec(f"t{i}",
                   rate=(0.2 if admission and i % 2 else None),
                   burst=4, queue_limit=32,
                   weight=(i % 3) + 1)
        for i in range(tenants)
    ]
    core = ServiceCore(specs, config=make_config(params), seed=SEED,
                       admission=admission, record_interleave=True,
                       arbiter=arbiter)
    rng = random.Random(99)
    for _ in range(cycles):
        for i in range(tenants):
            if rng.random() < 0.4:
                core.submit(f"t{i}", rng.getrandbits(16))
        core.tick()
    core.finish()
    return core.controllers[0].stats, core.interleave[0]


def replay_serially(params, interleave):
    """The recorded offer sequence through a fresh same-seed controller."""
    controller = VPNMController(make_config(params), seed=SEED)
    workload = [None if item is None else read_request(item[1])
                for item in interleave]
    run_workload(controller, workload, drain=True)
    return controller.stats


@pytest.mark.parametrize("arbiter", ["round-robin", "wdrr", "priority"])
@pytest.mark.parametrize("params,label", CONFIGS,
                         ids=[label for _, label in CONFIGS])
class TestServiceMatchesSerialReplay:
    def test_stall_and_drop_accounting_identical(self, params, label,
                                                 arbiter):
        service_stats, interleave = drive_service(params, arbiter=arbiter)
        replay_stats = replay_serially(params, interleave)

        assert service_stats.stalls > 0, (label, "config not hostile enough")
        assert service_stats.reads_accepted == replay_stats.reads_accepted
        assert service_stats.reads_merged == replay_stats.reads_merged
        assert dict(service_stats.stall_reasons) == \
            dict(replay_stats.stall_reasons)
        assert service_stats.dropped_requests == replay_stats.dropped_requests
        assert service_stats.stall_cycles == replay_stats.stall_cycles

    def test_admission_control_shapes_but_still_replays(self, params, label,
                                                        arbiter):
        """With token buckets on, the thinner interleave still matches."""
        service_stats, interleave = drive_service(params, admission=True,
                                                  arbiter=arbiter)
        replay_stats = replay_serially(params, interleave)
        offered = sum(1 for item in interleave if item is not None)
        assert offered > 0
        assert service_stats.reads_accepted == replay_stats.reads_accepted
        assert dict(service_stats.stall_reasons) == \
            dict(replay_stats.stall_reasons)
        assert service_stats.dropped_requests == replay_stats.dropped_requests


class TestStallTurnSemantics:
    """Satellite 5: who owns the next cycle after a rejected offer.

    Under the stall policy a rejected offer stays at its tenant's queue
    head; the arbiters differ on whose turn the *next* cycle is:

    * round-robin rotated past the pick already, so the stalled tenant
      **yields** — with two backlogged tenants the offer stream strictly
      alternates owners, stalls or not.
    * WDRR spent no credit on the rejected offer, so the tenant
      **keeps** its turn — the identical request is re-offered the very
      next cycle, and those retries are the only owner repeats at
      quantum 1.

    Pinned through the recorded interleave (the same script the serial
    replay consumes), with disjoint address spaces attributing every
    offer to its owner.
    """

    # One bank, deep stall pressure: plenty of rejected offers.
    PARAMS = dict(banks=1, bank_latency=8, queue_depth=1, delay_rows=64)
    A_BASE, B_BASE = 0x0000, 0x8000

    def drive(self, arbiter, cycles=120):
        config = VPNMConfig(address_bits=16, hash_latency=0,
                            stall_policy="stall", **self.PARAMS)
        core = ServiceCore([TenantSpec("a", queue_limit=256),
                            TenantSpec("b", queue_limit=256)],
                           config=config, seed=SEED,
                           record_interleave=True, arbiter=arbiter)
        for cycle in range(cycles):
            core.submit("a", self.A_BASE + cycle)
            core.submit("b", self.B_BASE + cycle)
            core.tick()
        stalls = sum(t.counts.controller_stalls for t in core.tenants)
        # Only the driven prefix: both queues were non-empty throughout.
        offers = core.interleave[0][:cycles]
        core.finish()
        assert stalls > 0, "config not hostile enough to stall"
        assert all(item is not None for item in offers)
        return offers, stalls

    def owner(self, item):
        return "a" if item[1] < self.B_BASE else "b"

    def test_round_robin_stalled_tenant_yields_turn(self):
        offers, _ = self.drive("round-robin")
        owners = [self.owner(item) for item in offers]
        assert owners == ["a", "b"] * (len(owners) // 2)

    def test_wdrr_stalled_tenant_keeps_turn(self):
        offers, stalls = self.drive("wdrr")
        repeats = [(prev, item) for prev, item in zip(offers, offers[1:])
                   if self.owner(prev) == self.owner(item)]
        assert repeats, "no retry ever kept its turn"
        # Every owner repeat is the same request offered again — a
        # stall retry, not a credit run (quantum 1, equal weights).
        assert all(prev == item for prev, item in repeats)
        # Each stall re-offers the same request next cycle; a stall on
        # the final driven cycle retries during quiesce, outside the
        # recorded window, hence the one-repeat slack.
        assert stalls - 1 <= len(repeats) <= stalls


def test_interleave_records_one_entry_per_cycle():
    """The recorded script covers every pre-quiesce cycle exactly once."""
    params = CONFIGS[2][0]
    specs = [TenantSpec("a"), TenantSpec("b")]
    core = ServiceCore(specs, config=make_config(params), seed=SEED,
                       record_interleave=True)
    for address in range(50):
        core.submit("a", address)
        core.submit("b", 0x8000 + address)
        core.tick()
    ticked = 50
    offered = sum(1 for item in core.interleave[0] if item is not None)
    assert len(core.interleave[0]) == ticked
    assert offered == min(ticked, 100)  # one offer per cycle max
