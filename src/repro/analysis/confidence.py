"""Binomial confidence intervals for measured stall statistics.

A simulated MTS estimate is ``cycles / stalls`` where ``stalls`` is a
binomial count over ``cycles`` trials (each interface cycle either
stalls or not; the trials are not literally independent, but the
correlation time of the stall process is a few ``D`` cycles — tiny
against multi-million-cycle runs, so the binomial interval is the
honest first-order error bar).

The Wilson score interval is used instead of the naive Wald interval:
it behaves correctly in exactly the regime MTS validation lives in —
very small ``p`` with a modest number of observed events — where Wald
collapses to a zero-width or negative interval.  No scipy needed; the
normal quantile is a table lookup for the conventional levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "BinomialInterval",
    "mts_interval",
    "stall_probability_interval",
    "wilson_interval",
]

#: Two-sided normal quantiles for the conventional confidence levels.
_Z_TABLE = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


def _z_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = _Z_TABLE.get(round(confidence, 2))
    if z is not None:
        return z
    # Acklam-style rational approximation of the normal quantile for
    # non-tabulated levels; |error| < 1.2e-4 over the useful range,
    # far below the statistical noise the interval expresses.
    p = 1.0 - (1.0 - confidence) / 2.0
    t = math.sqrt(-2.0 * math.log(1.0 - p))
    return t - ((0.010328 * t + 0.802853) * t + 2.515517) / (
        ((0.001308 * t + 0.189269) * t + 1.432788) * t + 1.0
    )


@dataclass(frozen=True)
class BinomialInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> BinomialInterval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    z = _z_value(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)
    )
    # The exact Wilson bounds at the extremes are 0 and 1; floating-point
    # residue in centre -/+ half must not leak a spurious epsilon (the
    # MTS inversion would turn a 1e-20 lower bound into a bogus finite
    # upper bound instead of infinity).
    low = 0.0 if successes == 0 else max(0.0, centre - half)
    high = 1.0 if successes == trials else min(1.0, centre + half)
    return BinomialInterval(
        estimate=p,
        low=low,
        high=high,
        confidence=confidence,
    )


def stall_probability_interval(stalls: int, cycles: int,
                               confidence: float = 0.95) -> BinomialInterval:
    """Confidence interval for the per-cycle stall probability."""
    return wilson_interval(stalls, cycles, confidence)


def mts_interval(stalls: int, cycles: int,
                 confidence: float = 0.95
                 ) -> Tuple[Optional[float], BinomialInterval]:
    """Mean-time-to-stall estimate with its confidence interval.

    Returns ``(mts, interval)`` where ``interval`` bounds MTS by
    inverting the stall-probability interval (MTS = 1/p, monotone, so
    the bounds map through directly).  ``mts`` is ``None`` when no
    stalls were observed; the interval's ``high`` is ``inf`` then —
    the data only supports a lower bound.
    """
    prob = stall_probability_interval(stalls, cycles, confidence)
    mts = cycles / stalls if stalls else None
    low = 1.0 / prob.high if prob.high > 0 else math.inf
    high = 1.0 / prob.low if prob.low > 0 else math.inf
    return mts, BinomialInterval(
        estimate=mts if mts is not None else math.inf,
        low=low,
        high=high,
        confidence=confidence,
    )
