"""Multi-tenant memory service over simulated VPNM controllers.

DESIGN.md §11/§12: admission control (token buckets, optional SLO
contracts with adaptive rates) → bounded per-tenant queues
(backpressure) → pluggable arbiter (round-robin, weighted deficit
round robin, strict-priority hybrid) → shared
:class:`~repro.core.VPNMController` instances, with graceful
degradation and per-tenant telemetry on the ``repro.obs`` stack.
"""

from repro.service.arbiter import (
    ARBITER_KINDS,
    Arbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    WeightedDeficitArbiter,
    jain_index,
    make_arbiter,
)
from repro.service.core import (
    ADMITTED,
    BACKPRESSURE,
    SHED,
    THROTTLED,
    ServiceCore,
    ServiceReport,
    SubmitResult,
    TenantReport,
)
from repro.service.frontend import (
    AsyncMemoryService,
    Completion,
    ServiceRejected,
)
from repro.service.synthetic import (
    SyntheticProfile,
    replay_mix,
    run_synthetic,
    synthetic_fleet,
    uniform_trace,
)
from repro.service.tenants import (
    SLOTracker,
    TenantCounts,
    TenantSpec,
    TenantState,
    TokenBucket,
    parse_rate,
    percentiles,
)

__all__ = [
    "ADMITTED",
    "ARBITER_KINDS",
    "BACKPRESSURE",
    "SHED",
    "THROTTLED",
    "Arbiter",
    "AsyncMemoryService",
    "Completion",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "SLOTracker",
    "ServiceCore",
    "ServiceRejected",
    "ServiceReport",
    "SubmitResult",
    "SyntheticProfile",
    "TenantCounts",
    "TenantReport",
    "TenantSpec",
    "TenantState",
    "TokenBucket",
    "WeightedDeficitArbiter",
    "jain_index",
    "make_arbiter",
    "parse_rate",
    "percentiles",
    "replay_mix",
    "run_synthetic",
    "synthetic_fleet",
    "uniform_trace",
]
