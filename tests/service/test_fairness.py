"""Quarter-scale fairness sweep (tier-1 twin of the fairness bench).

Same fleet, config and assertions as
``benchmarks/test_service_fairness.py`` at a quarter of the cycles, so
the WDRR-beats-round-robin acceptance gate runs on every test pass
(and in the CI fairness smoke job), not just when the benchmarks do.
One heavy weight-6 tenant plus five weight-1 lights oversubscribe a
shared controller 2x via a ``workloads/tenant_mix`` interleave; the
arbiter alone decides who completes.
"""

import pytest

from repro.core import VPNMConfig
from repro.service import (
    ServiceCore,
    TenantSpec,
    jain_index,
    replay_mix,
    uniform_trace,
)

CYCLES = 7_500      # quarter of the benchmark's 30k
SEED = 23
OFFERED = 2.0
ARBITERS = ("round-robin", "wdrr", "priority")
FLEET = [("heavy", 6, 0)] + [(f"light{i}", 1, 1) for i in range(5)]


def make_config():
    return VPNMConfig(banks=8, bank_latency=8, queue_depth=4,
                      delay_rows=16, bus_scaling=1.3, hash_latency=0,
                      stall_policy="stall", address_bits=16)


def run_arbiter(kind):
    specs = [TenantSpec(name, weight=weight, priority=priority,
                        queue_limit=64)
             for name, weight, priority in FLEET]
    core = ServiceCore(specs, config=make_config(), seed=SEED,
                       admission=False, arbiter=kind)
    total_weight = sum(weight for _, weight, _ in FLEET)
    traces = [
        uniform_trace(name, seed=SEED + 13 * i, address_bits=16,
                      weight=weight,
                      count=int(CYCLES * OFFERED * weight / total_weight)
                      + 1_000)
        for i, (name, weight, _) in enumerate(FLEET)
    ]
    return replay_mix(core, traces, CYCLES, offered=OFFERED)


def normalized_shares(fleet_report):
    return [fleet_report.tenants[name].counts["completed"] / weight
            for name, weight, _ in FLEET]


def completed_total(fleet_report):
    return sum(t.counts["completed"] for t in fleet_report.tenants.values())


@pytest.fixture(scope="module")
def sweep():
    """One deterministic run per arbiter, shared by every assertion."""
    return {kind: run_arbiter(kind) for kind in ARBITERS}


@pytest.fixture(autouse=True)
def _bind_sweep(request, sweep):
    request.instance.results = sweep


class TestFairnessSweep:

    def test_wdrr_beats_round_robin_at_small_throughput_cost(self):
        jain = {kind: jain_index(normalized_shares(self.results[kind]))
                for kind in ARBITERS}
        totals = {kind: completed_total(self.results[kind])
                  for kind in ARBITERS}
        assert jain["wdrr"] > jain["round-robin"] + 0.03, jain
        assert totals["wdrr"] >= 0.95 * totals["round-robin"], totals

    def test_heavy_tenant_moves_toward_its_entitlement(self):
        heavy_rr = \
            self.results["round-robin"].tenants["heavy"].counts["completed"]
        heavy_wdrr = \
            self.results["wdrr"].tenants["heavy"].counts["completed"]
        assert heavy_wdrr > 2 * heavy_rr, (heavy_rr, heavy_wdrr)

    def test_mix_oversubscribes_every_tenant(self):
        """The precondition that makes the sweep meaningful: everyone
        was backlogged (lost submissions to backpressure) under RR."""
        for name, _, _ in FLEET:
            counts = self.results["round-robin"].tenants[name].counts
            assert counts["backpressured"] > 0, name

    def test_priority_serves_high_class_arrivals_first(self):
        """The cautionary row: the lights' class takes (nearly) all it
        asks for and the heavy low class lives on scraps."""
        rpt = self.results["priority"]
        heavy = rpt.tenants["heavy"].counts["completed"]
        light_min = min(rpt.tenants[f"light{i}"].counts["completed"]
                        for i in range(5))
        assert heavy < light_min / 2
