"""Per-request timeline tracing — reproduces the paper's Figure 1.

Figure 1 shows, per memory access, the window during which the request
is "in the pipeline" (white box, D cycles) and the window during which
it actually occupies the DRAM bank (grey box, L cycles).  The tracer
captures both by (a) recording step results on the interface side and
(b) interposing on the DRAM device to log command issue times, then
renders an ASCII Gantt chart with the same visual vocabulary:

    req A  |■■■■■■■■■■████████■■■■■■■■■■■■|   ■ pipeline  █ bank access
    req B   |■■■■■■■■■■■■████████■■■■■■■■■|
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

from repro.core.controller import VPNMController
from repro.core.request import MemoryRequest, Reply


@dataclass
class RequestTimeline:
    """Everything observable about one request's trip through the memory."""

    tag: Any
    address: int
    bank: int
    line: Optional[int] = None          # bank-local line the hash chose
    accepted_at: Optional[int] = None   # interface cycle
    stalled: bool = False
    merged: bool = False
    issue_slot: Optional[int] = None    # memory-bus slot of the command
    ready_slot: Optional[int] = None    # memory-bus slot data returns
    completed_at: Optional[int] = None  # interface cycle of the reply

    @property
    def pipeline_latency(self) -> Optional[int]:
        if self.accepted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.accepted_at


class _DeviceTap:
    """Wraps a DRAMDevice, logging (slot, bank, line, kind) per command."""

    def __init__(self, device):
        self._device = device
        self.log: List[tuple] = []

    def read(self, bank, line, now):
        access = self._device.read(bank, line, now)
        self.log.append((now, bank, line, "read", access.ready_at))
        return access

    def write(self, bank, line, data, now):
        done = self._device.write(bank, line, data, now)
        self.log.append((now, bank, line, "write", done))
        return done

    def __getattr__(self, name):
        return getattr(self._device, name)


def trace_requests(
    controller: VPNMController,
    requests: Iterable[Optional[MemoryRequest]],
    drain: bool = True,
) -> List[RequestTimeline]:
    """Drive ``requests`` (None = idle cycle) and capture full timelines."""
    tap = _DeviceTap(controller.device)
    controller.device = tap
    controller.bus.device = tap
    try:
        timelines: List[RequestTimeline] = []
        by_request_id = {}
        replies: List[Reply] = []
        for item in requests:
            step = controller.step(item)
            replies.extend(step.replies)
            if item is None:
                continue
            mapping = controller.mapper.map(item.address)
            timeline = RequestTimeline(
                tag=item.tag, address=item.address, bank=mapping.bank,
                line=mapping.line,
            )
            if step.accepted:
                timeline.accepted_at = step.cycle
                timeline.merged = item.merged
                by_request_id[item.request_id] = timeline
            else:
                timeline.stalled = True
            timelines.append(timeline)
        if drain:
            replies.extend(controller.drain())
        for reply in replies:
            timeline = by_request_id.get(reply.request_id)
            if timeline is not None:
                timeline.completed_at = reply.completed_at
        _attach_bank_accesses(timelines, tap.log)
        return timelines
    finally:
        controller.device = tap._device
        controller.bus.device = tap._device


def _attach_bank_accesses(timelines: List[RequestTimeline], log) -> None:
    """Match logged DRAM commands to the (non-merged) requests they served.

    Commands are matched on ``(bank, line)``, FIFO within that pair —
    a bank serves its queue in order, but two outstanding requests to
    *different lines* of the same bank must not swap access windows
    (matching on bank alone used to hand the first command to whichever
    same-bank request appeared first in the trace).
    """
    for slot, bank, line, kind, ready in log:
        if kind != "read":
            continue
        for timeline in timelines:
            if (timeline.issue_slot is None and not timeline.merged
                    and not timeline.stalled and timeline.bank == bank
                    and timeline.line == line):
                timeline.issue_slot = slot
                timeline.ready_slot = ready
                break


def render_gantt(
    timelines: List[RequestTimeline],
    bus_scaling: float = 1.0,
    width: Optional[int] = None,
    pipeline_char: str = ".",
    access_char: str = "#",
    stall_char: str = "X",
) -> str:
    """ASCII Gantt chart in the style of the paper's Figure 1.

    One row per request; ``.`` marks in-the-pipeline cycles, ``#`` marks
    the bank-access window (converted from memory-bus slots to interface
    cycles via ``bus_scaling``), ``X`` flags a stalled request.
    """
    horizon = 0
    for timeline in timelines:
        if timeline.completed_at is not None:
            horizon = max(horizon, timeline.completed_at + 1)
    width = width or horizon
    lines = []
    for timeline in timelines:
        label = f"{str(timeline.tag) or timeline.address:>8}"
        if timeline.stalled:
            lines.append(f"{label} {stall_char * 8}  (stalled)")
            continue
        row = [" "] * width
        start = timeline.accepted_at
        end = timeline.completed_at if timeline.completed_at is not None else width
        for cycle in range(start, min(end + 1, width)):
            row[cycle] = pipeline_char
        if timeline.issue_slot is not None:
            issue = int(timeline.issue_slot / bus_scaling)
            ready = int(timeline.ready_slot / bus_scaling)
            for cycle in range(issue, min(ready, width)):
                row[cycle] = access_char
        suffix = " (merged)" if timeline.merged else ""
        lines.append(f"{label} {''.join(row)}{suffix}")
    return "\n".join(lines)
