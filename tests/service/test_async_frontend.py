"""Tests for the asyncio front-end (in-process API + socket transport).

Plain pytest + ``asyncio.run`` — no pytest-asyncio dependency.  Each
test builds a small core, drives concurrent client coroutines through
:class:`AsyncMemoryService`, and checks the completions against the
core's own ledger.
"""

import asyncio
import json

import pytest

from repro.core import VPNMConfig
from repro.service import (
    AsyncMemoryService,
    ServiceCore,
    ServiceRejected,
    TenantSpec,
)

SMALL = dict(banks=4, bank_latency=4, queue_depth=3, delay_rows=6,
             hash_latency=0, stall_policy="stall", address_bits=16)


def make_core(tenants, **kwargs):
    return ServiceCore(tenants, config=VPNMConfig(**SMALL), **kwargs)


class TestInProcess:
    def test_single_read_round_trip(self):
        async def main():
            core = make_core([TenantSpec("alice")])
            async with AsyncMemoryService(core) as service:
                done = await service.request("alice", 0x1234)
            return done, service.report

        done, report = asyncio.run(main())
        assert done.tenant == "alice"
        assert done.address == 0x1234
        assert done.latency >= VPNMConfig(**SMALL).normalized_delay
        assert report.tenants["alice"].counts["completed"] == 1

    def test_many_concurrent_clients_all_complete(self):
        async def main():
            core = make_core([TenantSpec("alice", queue_limit=64),
                              TenantSpec("bob", queue_limit=64)])
            async with AsyncMemoryService(core, cycles_per_slice=16) as svc:
                tasks = [svc.request("alice", 0x100 + i) for i in range(25)]
                tasks += [svc.request("bob", 0x8000 + i) for i in range(25)]
                completions = await asyncio.gather(*tasks)
            return completions, svc.report

        completions, report = asyncio.run(main())
        assert len(completions) == 50
        for name in ("alice", "bob"):
            counts = report.tenants[name].counts
            assert counts["completed"] == 25
            assert counts["dropped"] == 0

    def test_backpressure_waits_instead_of_failing(self):
        """More concurrent requests than the queue holds: every one
        still completes because request() waits out the backpressure."""
        async def main():
            core = make_core([TenantSpec("alice", queue_limit=4)])
            async with AsyncMemoryService(core, cycles_per_slice=8) as svc:
                completions = await asyncio.gather(
                    *[svc.request("alice", i) for i in range(20)])
            return completions, svc.report

        completions, report = asyncio.run(main())
        assert len(completions) == 20
        counts = report.tenants["alice"].counts
        assert counts["completed"] == 20
        # The tiny queue really did push back at least once.
        assert counts["backpressured"] > 0

    def test_throttled_raises_service_rejected(self):
        async def main():
            core = make_core([TenantSpec("alice", rate=0.001, burst=1)])
            async with AsyncMemoryService(core) as svc:
                first = await svc.request("alice", 1)
                try:
                    await svc.request("alice", 2)
                except ServiceRejected as rejection:
                    return first, rejection
                return first, None

        first, rejection = asyncio.run(main())
        assert first.latency > 0
        assert rejection is not None
        assert rejection.tenant == "alice"
        assert rejection.status == "throttled"

    def test_write_then_read_returns_payload(self):
        async def main():
            core = make_core([TenantSpec("alice")])
            async with AsyncMemoryService(core) as svc:
                await svc.request("alice", 0x42, op="write", data="hello")
                done = await svc.request("alice", 0x42)
            return done

        done = asyncio.run(main())
        assert done.data == "hello"

    def test_report_available_after_stop(self):
        async def main():
            core = make_core([TenantSpec("alice")])
            service = AsyncMemoryService(core)
            service.start()
            await service.request("alice", 7)
            report = await service.stop()
            return service, report

        service, report = asyncio.run(main())
        assert service.report is report
        assert "alice" in report.table()


class TestSocketTransport:
    def test_json_round_trip(self):
        async def main():
            core = make_core([TenantSpec("alice")])
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write((json.dumps(
                    {"id": 1, "tenant": "alice", "address": 4096})
                    + "\n").encode())
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
            return json.loads(line)

        response = asyncio.run(main())
        assert response["id"] == 1
        assert response["status"] == "ok"
        assert response["address"] == 4096
        assert response["latency"] > 0

    def test_pipelined_requests_one_connection(self):
        async def main():
            core = make_core([TenantSpec("alice", queue_limit=64)])
            async with AsyncMemoryService(core, cycles_per_slice=16) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                for i in range(10):
                    writer.write((json.dumps(
                        {"id": i, "tenant": "alice", "address": 0x100 + i})
                        + "\n").encode())
                await writer.drain()
                responses = [json.loads(await reader.readline())
                             for _ in range(10)]
                writer.close()
                await writer.wait_closed()
            return responses

        responses = asyncio.run(main())
        assert {r["id"] for r in responses} == set(range(10))
        assert all(r["status"] == "ok" for r in responses)

    def test_rejection_and_malformed_line(self):
        async def main():
            core = make_core([TenantSpec("alice", rate=0.001, burst=1)])
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                # Burn the single token, then get throttled.
                writer.write((json.dumps(
                    {"id": 1, "tenant": "alice", "address": 1})
                    + "\n").encode())
                await writer.drain()
                ok = json.loads(await reader.readline())
                writer.write((json.dumps(
                    {"id": 2, "tenant": "alice", "address": 2})
                    + "\n").encode())
                await writer.drain()
                throttled = json.loads(await reader.readline())
                writer.write(b"this is not json\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
            return ok, throttled, error

        ok, throttled, error = asyncio.run(main())
        assert ok["status"] == "ok"
        assert throttled == {"id": 2, "status": "throttled"}
        assert error["status"] == "error"
        assert error["id"] is None


class TestControlOps:
    @staticmethod
    async def ask(reader, writer, message):
        writer.write((json.dumps(message) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())

    def test_info_reports_arbiter_and_exact_rates(self):
        async def main():
            core = make_core(
                [TenantSpec("alice", rate="1/10", weight=3, slo_p99=64)],
                arbiter="wdrr", quantum=2)
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                info = await self.ask(reader, writer, {"id": 5, "op": "info"})
                writer.close()
                await writer.wait_closed()
            return info

        info = asyncio.run(main())
        assert info["id"] == 5 and info["status"] == "ok"
        assert info["info"]["arbiter"] == "wdrr"
        assert info["info"]["quantum"] == 2
        alice = info["info"]["tenants"]["alice"]
        assert alice["rate"] == "1/10"      # exact rational, not a float
        assert alice["weight"] == 3
        assert alice["slo"]["p99_target"] == 64

    def test_set_rate_takes_exact_strings_and_bites(self):
        async def main():
            core = make_core([TenantSpec("alice", rate="1/2", burst=1)])
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                moved = await self.ask(reader, writer, {
                    "id": 1, "op": "set-rate", "tenant": "alice",
                    "rate": "1/1000"})
                first = await self.ask(reader, writer, {
                    "id": 2, "tenant": "alice", "address": 1})
                throttled = await self.ask(reader, writer, {
                    "id": 3, "tenant": "alice", "address": 2})
                writer.close()
                await writer.wait_closed()
            return moved, first, throttled

        moved, first, throttled = asyncio.run(main())
        assert moved == {"id": 1, "status": "ok", "tenant": "alice",
                         "rate": "1/1000"}
        assert first["status"] == "ok"      # the burst token
        assert throttled["status"] == "throttled"

    def test_control_errors_keep_the_connection_alive(self):
        async def main():
            core = make_core([TenantSpec("alice")])
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                unknown = await self.ask(reader, writer, {
                    "id": 1, "op": "set-rate", "tenant": "nobody",
                    "rate": "1/4"})
                bad_rate = await self.ask(reader, writer, {
                    "id": 2, "op": "set-rate", "tenant": "alice",
                    "rate": "fast"})
                still_ok = await self.ask(reader, writer, {
                    "id": 3, "tenant": "alice", "address": 9})
                writer.close()
                await writer.wait_closed()
            return unknown, bad_rate, still_ok

        unknown, bad_rate, still_ok = asyncio.run(main())
        assert unknown["status"] == "error" and unknown["id"] == 1
        assert bad_rate["status"] == "error" and "fast" in bad_rate["detail"]
        assert still_ok["status"] == "ok"

    def test_stats_dumps_metrics_snapshot_and_info(self):
        async def main():
            from repro.obs.metrics import MetricsRegistry
            core = make_core([TenantSpec("alice")],
                             metrics=MetricsRegistry())
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                await self.ask(reader, writer, {
                    "id": 1, "tenant": "alice", "address": 7})
                stats = await self.ask(reader, writer,
                                       {"id": 2, "op": "stats"})
                writer.close()
                await writer.wait_closed()
            return stats

        stats = asyncio.run(main())
        assert stats["id"] == 2 and stats["status"] == "ok"
        assert "alice" in stats["stats"]["info"]["tenants"]
        snapshot = stats["stats"]["metrics"]
        assert snapshot["tenant.admitted"]["values"][0] == 1

    def test_metrics_renders_prometheus_text(self):
        async def main():
            from repro.obs.metrics import MetricsRegistry
            core = make_core([TenantSpec("alice")],
                             metrics=MetricsRegistry())
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                await self.ask(reader, writer, {
                    "id": 1, "tenant": "alice", "address": 7})
                dump = await self.ask(reader, writer,
                                      {"id": 2, "op": "metrics"})
                writer.close()
                await writer.wait_closed()
            return dump

        dump = asyncio.run(main())
        assert dump["status"] == "ok"
        text = dump["metrics"]
        assert "# TYPE repro_tenant_admitted counter" in text
        assert 'repro_tenant_admitted{index="0"} 1' in text
        assert 'repro_tenant_queue_depth{tenant="alice"} 0' in text

    def test_stats_without_metrics_registry_is_empty_not_an_error(self):
        async def main():
            core = make_core([TenantSpec("alice")])
            async with AsyncMemoryService(core) as svc:
                host, port = await svc.serve_socket()
                reader, writer = await asyncio.open_connection(host, port)
                stats = await self.ask(reader, writer,
                                       {"id": 1, "op": "stats"})
                writer.close()
                await writer.wait_closed()
            return stats

        stats = asyncio.run(main())
        assert stats["status"] == "ok"
        assert stats["stats"]["metrics"] == {}


class TestConstruction:
    def test_rejects_bad_slice(self):
        core = make_core([TenantSpec("alice")])
        with pytest.raises(ValueError):
            AsyncMemoryService(core, cycles_per_slice=0)
