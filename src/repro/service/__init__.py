"""Multi-tenant memory service over simulated VPNM controllers.

DESIGN.md §11: admission control (token buckets) → bounded per-tenant
queues (backpressure) → round-robin multiplexer → shared
:class:`~repro.core.VPNMController` instances, with graceful
degradation and per-tenant telemetry on the ``repro.obs`` stack.
"""

from repro.service.core import (
    ADMITTED,
    BACKPRESSURE,
    SHED,
    THROTTLED,
    ServiceCore,
    ServiceReport,
    SubmitResult,
    TenantReport,
)
from repro.service.frontend import (
    AsyncMemoryService,
    Completion,
    ServiceRejected,
)
from repro.service.synthetic import (
    SyntheticProfile,
    run_synthetic,
    synthetic_fleet,
)
from repro.service.tenants import (
    TenantCounts,
    TenantSpec,
    TenantState,
    TokenBucket,
    percentiles,
)

__all__ = [
    "ADMITTED",
    "BACKPRESSURE",
    "SHED",
    "THROTTLED",
    "AsyncMemoryService",
    "Completion",
    "ServiceCore",
    "ServiceRejected",
    "ServiceReport",
    "SubmitResult",
    "SyntheticProfile",
    "TenantCounts",
    "TenantReport",
    "TenantSpec",
    "TenantState",
    "TokenBucket",
    "percentiles",
    "run_synthetic",
    "synthetic_fleet",
]
