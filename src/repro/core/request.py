"""Memory request lifecycle types.

Paper Section 4.2: "At a high level each memory request goes through 4
states: pending, accessing, waiting, and completed.  New requests start
out as pending, and when the proper request is actually sent out to the
DRAM, the request is accessing.  When the result returns from DRAM the
request is waiting (until D total cycles have elapsed), and finally the
request is completed and results are returned to the rest of the system."

Redundant reads merged into an existing delay-storage row skip straight
to whatever state the row's underlying access is in; their *reply* timing
is tracked separately (each merged requester gets its own reply at its
own ``t + D``).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class RequestState(enum.Enum):
    """The four states of the paper plus terminal failure states."""

    PENDING = "pending"        # accepted, sitting in the bank access queue
    ACCESSING = "accessing"    # command issued to the DRAM bank
    WAITING = "waiting"        # data back from DRAM, waiting for t + D
    COMPLETED = "completed"    # reply delivered on the interface
    STALLED = "stalled"        # rejected by a full structure (drop policy)


class Operation(enum.Enum):
    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


@dataclass
class MemoryRequest:
    """One interface-side memory request.

    ``tag`` is an opaque caller token returned with the reply, so
    applications (packet buffer, reassembler) can match replies to their
    own bookkeeping without keeping a side table.
    """

    operation: Operation
    address: int
    data: Any = None                      # payload for writes
    tag: Any = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    issued_at: Optional[int] = None       # interface cycle of acceptance
    due_at: Optional[int] = None          # issued_at + D for reads
    state: RequestState = RequestState.PENDING
    merged: bool = False                  # read satisfied by an existing row

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.operation is Operation.WRITE and self.data is None:
            raise ValueError("write requests must carry data")

    @property
    def is_read(self) -> bool:
        return self.operation is Operation.READ

    @property
    def is_write(self) -> bool:
        return self.operation is Operation.WRITE


@dataclass(frozen=True)
class Reply:
    """A completed read delivered on the interface bus at ``completed_at``.

    ``latency`` is always exactly D for accepted reads — that equality is
    the virtual-pipeline contract and is asserted across the test suite.
    """

    request_id: int
    address: int
    data: Any
    tag: Any
    issued_at: int
    completed_at: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.issued_at


@dataclass(frozen=True)
class StallEvent:
    """A request the controller could not accept this cycle.

    ``reason`` is one of ``"delay_storage"``, ``"bank_queue"``,
    ``"write_buffer"`` — the three conditions of Section 4.3.
    """

    cycle: int
    bank: int
    reason: str
    request_id: int
