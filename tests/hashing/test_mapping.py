"""Tests for the address → (bank, line) mapper."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.mapping import AddressMapper, BankMapping


class TestAddressMapperConstruction:
    def test_rejects_non_power_of_two_banks(self):
        for banks in [0, 3, 6, 33]:
            with pytest.raises(ValueError):
                AddressMapper(banks=banks)

    def test_rejects_more_bank_bits_than_address_bits(self):
        with pytest.raises(ValueError):
            AddressMapper(address_bits=4, banks=32)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            AddressMapper(scheme="md5")

    def test_single_bank_always_bank_zero(self):
        mapper = AddressMapper(address_bits=16, banks=1, seed=3)
        assert all(mapper.bank_of(a) == 0 for a in range(0, 2**16, 997))


class TestMappingProperties:
    def test_bank_in_range(self):
        mapper = AddressMapper(address_bits=32, banks=32, seed=1)
        rng = random.Random(0)
        for _ in range(500):
            m = mapper.map(rng.getrandbits(32))
            assert 0 <= m.bank < 32

    def test_mapping_is_injective(self):
        """Distinct addresses must land on distinct (bank, line) pairs."""
        mapper = AddressMapper(address_bits=16, banks=8, seed=2)
        seen = set()
        for address in range(2**16):
            m = mapper.map(address)
            pair = (m.bank, m.line)
            assert pair not in seen
            seen.add(pair)

    def test_deterministic_per_seed(self):
        a = AddressMapper(address_bits=32, banks=32, seed=11)
        b = AddressMapper(address_bits=32, banks=32, seed=11)
        assert all(a.map(x) == b.map(x) for x in range(1000))

    def test_rekey_changes_mapping(self):
        mapper = AddressMapper(address_bits=32, banks=32, seed=1)
        before = [mapper.bank_of(x) for x in range(512)]
        mapper.rekey(2)
        assert [mapper.bank_of(x) for x in range(512)] != before

    def test_rekey_without_seed_still_randomizes(self):
        mapper = AddressMapper(address_bits=32, banks=32, seed=1)
        before = [mapper.bank_of(x) for x in range(512)]
        mapper.rekey()
        # Overwhelmingly likely to differ; equality would mean rekey is broken.
        assert [mapper.bank_of(x) for x in range(512)] != before

    def test_out_of_range_address_rejected(self):
        mapper = AddressMapper(address_bits=16, banks=4, seed=0)
        with pytest.raises(ValueError):
            mapper.map(1 << 16)
        with pytest.raises(ValueError):
            mapper.map(-1)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_bank_of_matches_map(self, address):
        mapper = AddressMapper(address_bits=32, banks=32, seed=5)
        assert mapper.bank_of(address) == mapper.map(address).bank

    def test_low_bits_scheme_is_the_strawman(self):
        mapper = AddressMapper(address_bits=32, banks=32, scheme="low-bits")
        assert mapper.bank_of(0b1100001) == 1
        # stride == banks pins everything on one bank
        assert {mapper.bank_of(i * 32) for i in range(64)} == {0}

    def test_carter_wegman_breaks_stride_pinning(self):
        mapper = AddressMapper(address_bits=32, banks=32, seed=9)
        banks = {mapper.bank_of(i * 32) for i in range(256)}
        assert len(banks) >= 24

    def test_uniformity_chi_square(self):
        mapper = AddressMapper(address_bits=32, banks=16, seed=17)
        rng = random.Random(3)
        counts = [0] * 16
        n = 16_000
        for _ in range(n):
            counts[mapper.bank_of(rng.getrandbits(32))] += 1
        expected = n / 16
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        # 15 dof, 99.9th percentile ~ 37.7
        assert chi2 < 37.7


class TestBankMapping:
    def test_value_semantics(self):
        assert BankMapping(1, 2) == BankMapping(1, 2)
        assert BankMapping(1, 2) != BankMapping(2, 1)

    def test_frozen(self):
        m = BankMapping(0, 0)
        with pytest.raises(AttributeError):
            m.bank = 3
