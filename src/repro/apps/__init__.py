"""Data-plane applications on top of VPNM (paper Section 5.4).

- :mod:`~repro.apps.packet_buffer` — per-interface packet queues in
  DRAM with only head/tail pointers in SRAM (Section 5.4.1).
- :mod:`~repro.apps.reassembly` — robust TCP reassembly with hole
  buffers, five DRAM accesses per 64-byte chunk (Section 5.4.2).
- :mod:`~repro.apps.baselines` — a conventional banked controller (no
  randomization, no latency normalization) for contrast.
- :mod:`~repro.apps.comparison` — the Table 3 scheme comparison:
  reported rows for Aristides et al., RADS, and CFDS, plus our scheme's
  row computed from the library's own models.

Plus the paper's named future-work algorithms, implemented here:

- :mod:`~repro.apps.lpm` — longest-prefix-match IP forwarding
  (multibit trie, one DRAM read per level, pipelined lookups).
- :mod:`~repro.apps.inspection` — Aho-Corasick content inspection
  (DFA transition table in DRAM, one read per scanned byte).
- :mod:`~repro.apps.classification` — two-field packet classification
  (Lucent bit-vector scheme, per-field tries walked concurrently).
"""

from repro.apps.baselines import ConventionalController
from repro.apps.comparison import (
    CFDS,
    NIKOLOGIANNIS,
    RADS,
    SchemeRow,
    our_scheme_row,
    table3,
)
from repro.apps.classification import (
    BitmapTrie,
    ClassifierRule,
    RuleSet,
    VPNMClassifierEngine,
)
from repro.apps.inspection import AhoCorasick, Match, VPNMInspectionEngine
from repro.apps.linecard import LineCard, LineCardReport
from repro.apps.lpm import MultibitTrie, Route, VPNMLPMEngine
from repro.apps.packet_buffer import DequeuedPacket, VPNMPacketBuffer
from repro.apps.reassembly import ReassemblyStats, StreamAssembler, VPNMReassembler

__all__ = [
    "AhoCorasick",
    "BitmapTrie",
    "CFDS",
    "ClassifierRule",
    "ConventionalController",
    "DequeuedPacket",
    "LineCard",
    "LineCardReport",
    "Match",
    "MultibitTrie",
    "RuleSet",
    "VPNMClassifierEngine",
    "NIKOLOGIANNIS",
    "RADS",
    "ReassemblyStats",
    "Route",
    "SchemeRow",
    "StreamAssembler",
    "VPNMInspectionEngine",
    "VPNMLPMEngine",
    "VPNMPacketBuffer",
    "VPNMReassembler",
    "our_scheme_row",
    "table3",
]
