"""Tests for the well-behaved traffic generators."""

import itertools

import pytest

from repro.core.request import Operation
from repro.workloads.generators import (
    burst_traffic,
    mixed_read_write,
    stride_reads,
    uniform_reads,
    zipf_reads,
)


class TestUniformReads:
    def test_count_bounds_output(self):
        assert len(list(uniform_reads(count=10))) == 10

    def test_deterministic_per_seed(self):
        a = [r.address for r in uniform_reads(count=50, seed=3)]
        b = [r.address for r in uniform_reads(count=50, seed=3)]
        assert a == b
        c = [r.address for r in uniform_reads(count=50, seed=4)]
        assert a != c

    def test_respects_address_bits(self):
        assert all(r.address < 2**12
                   for r in uniform_reads(address_bits=12, count=200))

    def test_all_reads(self):
        assert all(r.operation is Operation.READ
                   for r in uniform_reads(count=20))

    def test_infinite_without_count(self):
        gen = uniform_reads(seed=1)
        assert len(list(itertools.islice(gen, 1000))) == 1000


class TestStrideReads:
    def test_arithmetic_progression(self):
        addresses = [r.address for r in stride_reads(stride=32, count=5)]
        assert addresses == [0, 32, 64, 96, 128]

    def test_start_offset(self):
        addresses = [r.address for r in stride_reads(stride=8, start=100,
                                                     count=3)]
        assert addresses == [100, 108, 116]

    def test_wraps_at_address_space(self):
        addresses = [r.address for r in
                     stride_reads(stride=3, start=6, address_bits=3, count=3)]
        assert addresses == [6, 1, 4]

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            list(stride_reads(stride=0, count=1))


class TestZipfReads:
    def test_skew_concentrates_on_few_addresses(self):
        requests = list(zipf_reads(universe=100, exponent=1.5, count=2000,
                                   seed=0))
        counts = {}
        for r in requests:
            counts[r.address] = counts.get(r.address, 0) + 1
        top = max(counts.values())
        assert top > 2000 / 100 * 5  # far above uniform share

    def test_universe_bounds_distinct_addresses(self):
        requests = list(zipf_reads(universe=10, count=500, seed=1))
        assert len({r.address for r in requests}) <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            list(zipf_reads(universe=0, count=1))
        with pytest.raises(ValueError):
            list(zipf_reads(exponent=0, count=1))


class TestMixedReadWrite:
    def test_fraction_respected_roughly(self):
        requests = list(mixed_read_write(read_fraction=0.5, count=2000,
                                         seed=2))
        reads = sum(1 for r in requests if r.operation is Operation.READ)
        assert 850 < reads < 1150

    def test_extremes(self):
        assert all(r.operation is Operation.READ
                   for r in mixed_read_write(read_fraction=1.0, count=50))
        assert all(r.operation is Operation.WRITE
                   for r in mixed_read_write(read_fraction=0.0, count=50))

    def test_writes_carry_data(self):
        writes = [r for r in mixed_read_write(read_fraction=0.0, count=10)]
        assert all(r.data is not None for r in writes)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(mixed_read_write(read_fraction=1.5, count=1))


class TestBurstTraffic:
    def test_burst_gap_structure(self):
        items = list(burst_traffic(burst_length=3, gap_length=2, count=10))
        pattern = [item is not None for item in items]
        assert pattern == [True, True, True, False, False,
                           True, True, True, False, False]

    def test_no_gaps(self):
        items = list(burst_traffic(burst_length=4, gap_length=0, count=8))
        assert all(item is not None for item in items)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(burst_traffic(burst_length=0, count=1))
        with pytest.raises(ValueError):
            list(burst_traffic(gap_length=-1, count=1))
