"""Differential validation of the merging lane model.

:class:`MergingLaneSimulator` re-implements the controller's
address-level merging dynamics (CAM, saturating reference counters, row
release ring, both bus arbitration modes) without per-request objects.
On the same offer stream it must reproduce the full
:class:`VPNMController` accounting *exactly*: accepted and merged
counts, the per-reason stall split, dropped requests, and the number of
bank commands actually issued.

Streams cross the regimes with distinct code paths: flood (a pool
smaller than the delay storage, merging-dominated), Zipf (mixed hits
and misses), uniform (miss-dominated), and idle-mixed (release ring
drains between arrivals) — each with merging on and off, under both
strict and work-conserving arbitration.
"""

import random

import pytest

from repro.core import VPNMConfig, VPNMController, read_request
from repro.sim.mergesim import MergingLaneSimulator
from repro.sim.runner import run_workload

SEED = 3
REQUESTS = 1500

BASE = dict(banks=4, bank_latency=4, queue_depth=3, delay_rows=6,
            bus_scaling=1.3, hash_latency=0, address_bits=16,
            stall_policy="drop")


def make_config(merge, strict, **overrides):
    params = dict(BASE, merge_reads=merge, skip_idle_slots=not strict)
    params.update(overrides)
    return VPNMConfig(**params)


def make_stream(kind, count=REQUESTS, seed=SEED):
    rng = random.Random(1000 + seed)
    if kind == "flood":
        # A pool far smaller than total delay rows: CAM-hit dominated.
        pool = [rng.getrandbits(16) for _ in range(8)]
        return [pool[i % len(pool)] for i in range(count)]
    if kind == "zipf":
        pool = [rng.getrandbits(16) for _ in range(64)]
        weights = [1.0 / (rank + 1) for rank in range(len(pool))]
        return rng.choices(pool, weights=weights, k=count)
    if kind == "uniform":
        return [rng.getrandbits(16) for _ in range(count)]
    if kind == "idle-mixed":
        return [None if rng.random() < 0.35 else rng.getrandbits(16)
                for i in range(count)]
    raise ValueError(kind)


def run_both(config, stream):
    lane = MergingLaneSimulator(config, seed=SEED)
    lane.run(stream)
    lane_result = lane.drain()

    controller = VPNMController(config, seed=SEED)
    workload = [None if address is None else read_request(address)
                for address in stream]
    run_workload(controller, workload, drain=True)
    return lane_result, controller.stats


@pytest.mark.parametrize("kind", ["flood", "zipf", "uniform", "idle-mixed"])
@pytest.mark.parametrize("merge", [True, False], ids=["merge", "no-merge"])
@pytest.mark.parametrize("strict", [True, False],
                         ids=["strict", "work-conserving"])
def test_lane_matches_controller_exactly(kind, merge, strict):
    config = make_config(merge, strict)
    lane, controller = run_both(config, make_stream(kind))
    where = (kind, merge, strict)

    assert lane.reads_accepted == controller.reads_accepted, where
    assert lane.reads_merged == controller.reads_merged, where
    assert lane.stall_reasons == dict(controller.stall_reasons), where
    assert lane.dropped == controller.dropped_requests, where
    assert lane.accesses_issued == controller.bank_accesses, where


def test_saturating_counter_stalls_match():
    """A two-bit counter saturates under a flood; the lane model must
    stall on exactly the same offers as the controller's CAM."""
    config = make_config(True, True, counter_bits=2, delay_rows=16)
    # One hot address: its counter climbs toward D and pins at 3.
    lane, controller = run_both(config, [0xBEEF] * REQUESTS)
    assert lane.delay_storage_stalls > 0
    assert lane.stall_reasons == dict(controller.stall_reasons)
    assert lane.reads_merged == controller.reads_merged


def test_accumulates_across_run_calls():
    """Two half-streams equal one whole stream (runner-style reuse)."""
    config = make_config(True, True)
    stream = make_stream("zipf")

    split = MergingLaneSimulator(config, seed=SEED)
    split.run(stream[:len(stream) // 2])
    split.run(stream[len(stream) // 2:])
    split_result = split.drain()

    whole = MergingLaneSimulator(config, seed=SEED)
    whole.run(stream)
    whole_result = whole.drain()

    assert split_result == whole_result


def test_rejects_stall_policy():
    config = VPNMConfig(stall_policy="stall", **{
        k: v for k, v in BASE.items() if k != "stall_policy"})
    with pytest.raises(ValueError):
        MergingLaneSimulator(config)
