"""The Table 3 packet-buffering comparison.

The paper compares VPNM-based packet buffering against three published
special-purpose schemes *by their reported numbers* (its own Table 3);
we encode those rows verbatim and compute our scheme's row from this
library's models, so every number in our row is reproducible:

* SRAM = per-queue head/tail pointer store + the bank controllers'
  internal storage (delay storage data dominates);
* area = calibrated bank-controller area + pointer-SRAM area via the
  same fit;
* delay = the normalized D in nanoseconds;
* line rate = one memory request per interface cycle at 64-byte cells
  (write + read per cell);
* interfaces = queues supported by the pointer SRAM budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import VPNMConfig, paper_config
from repro.hardware.bits import controller_bits
from repro.hardware.model import HardwareModel


@dataclass(frozen=True)
class SchemeRow:
    """One row of Table 3."""

    name: str
    citation: str
    max_line_rate_gbps: float
    sram_bytes: Optional[int]          # None where the paper prints '-'
    area_mm2: Optional[float]
    total_delay_ns: Optional[float]
    interfaces: int
    reported: bool = True              # False for our computed row

    def render(self) -> str:
        sram = "-" if self.sram_bytes is None else f"{self.sram_bytes // 1024} KB"
        area = "-" if self.area_mm2 is None else f"{self.area_mm2:.1f}"
        delay = "-" if self.total_delay_ns is None else f"{self.total_delay_ns:.0f}"
        return (f"{self.name:<22} {self.max_line_rate_gbps:>8.0f} "
                f"{sram:>8} {area:>7} {delay:>8} {self.interfaces:>8}")


#: Aristides Nikologiannis & Katevenis, out-of-order DRAM queueing (ICC'01).
NIKOLOGIANNIS = SchemeRow(
    name="Nikologiannis et al.",
    citation="[22]",
    max_line_rate_gbps=10.0,
    sram_bytes=520 * 1024,
    area_mm2=27.4,
    total_delay_ns=None,
    interfaces=64000,
)

#: Iyer, Kompella & McKeown's RADS: SRAM/DRAM head-tail caches (Stanford TR).
RADS = SchemeRow(
    name="RADS",
    citation="[17]",
    max_line_rate_gbps=40.0,
    sram_bytes=64 * 1024,
    area_mm2=10.0,
    total_delay_ns=53.0,
    interfaces=130,
)

#: Garcia et al.'s CFDS: conflict-free DRAM subsystem (MICRO'03).
CFDS = SchemeRow(
    name="CFDS",
    citation="[12]",
    max_line_rate_gbps=160.0,
    sram_bytes=None,
    area_mm2=60.0,
    total_delay_ns=10000.0,
    interfaces=850,
)


def our_scheme_row(
    config: Optional[VPNMConfig] = None,
    num_queues: int = 4096,
    interface_clock_mhz: float = 1000.0,
    model: Optional[HardwareModel] = None,
) -> SchemeRow:
    """Our scheme's Table 3 row, computed from the library's own models.

    Defaults to the paper's comparison point: the Q=48/K=96 Table 2
    configuration at a 1 GHz interface with 4096 queues.
    """
    config = config or paper_config(2, hash_latency=0)  # B=32,Q=48,K=96
    model = model or HardwareModel()

    # SRAM: 2 pointers per queue (32-bit) + all controller storage.
    pointer_bits = num_queues * 2 * config.address_bits
    pointer_bytes = pointer_bits // 8
    controller_bytes = int(controller_bits(config).total_bytes * config.banks)
    sram_bytes = pointer_bytes + controller_bytes

    # Area: controllers via the calibrated fit; pointer SRAM priced with
    # the same per-bit fit evaluated at its size.
    controller_area = model.total_area_mm2(config)
    pointer_area = model._area_fit.area_mm2(pointer_bits) * (
        model.tech_um / 0.13) ** 2
    area = controller_area + pointer_area

    # One request per interface cycle; a buffered 64-byte cell costs one
    # write and one read.
    requests_per_second = interface_clock_mhz * 1e6
    line_rate = requests_per_second * config.data_bytes * 8 / 2 / 1e9
    # The raw bound (256 gbps at 1 GHz / 64 B cells) exceeds OC-3072;
    # the table reports the demonstrated operating point, as the paper's
    # row does.
    supported = min(line_rate, 160.0)

    delay_ns = config.delay_ns(interface_clock_mhz)

    return SchemeRow(
        name="VPNM (this work)",
        citation="-",
        max_line_rate_gbps=supported,
        sram_bytes=sram_bytes,
        area_mm2=area,
        total_delay_ns=delay_ns,
        interfaces=num_queues,
        reported=False,
    )


def table3(config: Optional[VPNMConfig] = None) -> List[SchemeRow]:
    """All four rows of the comparison."""
    return [NIKOLOGIANNIS, RADS, CFDS, our_scheme_row(config)]


def render_table3(rows: Optional[List[SchemeRow]] = None) -> str:
    """The comparison as aligned text (what the bench prints)."""
    rows = rows or table3()
    header = (f"{'scheme':<22} {'gbps':>8} {'SRAM':>8} {'mm2':>7} "
              f"{'delay ns':>8} {'queues':>8}")
    return "\n".join([header] + [row.render() for row in rows])
