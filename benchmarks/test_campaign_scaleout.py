"""Scale-out benchmark: the work-stealing exchange at 1/2/4/8 workers.

Measures the wall-clock drain time of one campaign grid when N
``repro campaign worker`` subprocesses share the directory, with the
coordinator harvesting only (``participate=False``) so every shard is
executed by the fleet.  The roofline-ledger discipline applies: the
artifact publishes the shards/sec denominators, the speedup over one
worker, and the per-worker efficiency.

Two modes, chosen by the machine (recorded in the artifact):

* **cpu** — ≥4 cores: shards run at natural speed and the speedup is
  real parallel compute.
* **overlap** — fewer cores (this repo's CI boxes are 1-core): shard
  *latency* is modeled via ``REPRO_DISTRIB_SHARD_DELAY`` (a sleep per
  shard inside the worker — simulated results untouched), so the
  measurement isolates what the executor itself provides: overlapping
  shard latencies across workers.  This is exactly the regime the
  exchange exists for — many machines draining one directory, each
  shard seconds-to-minutes long — reproduced on one box.

Gate: ≥3x speedup at 4 workers (the ISSUE-10 acceptance bar; the
smoke profile relaxes to ≥2x since its shards are so short that
per-claim scan overhead is a visible fraction of the delay).
"""

import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.sim.campaign import SweepCampaign, fig6_grid
from repro.sim.distrib import worker_status

from _report import report

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
    else (os.cpu_count() or 1)
MODE = "cpu" if CORES >= 4 else "overlap"

WORKER_COUNTS = [1, 2, 4, 8]
if SMOKE:
    GRID = dict(q_values=[1, 2], banks=4, bank_latency=4, delay_rows=64,
                cycles=2_000, lanes=4)
    SHARD_LANES = 1          # 2 cells x 4 shards = 8 shards
    SHARD_DELAY = 0.6
    MIN_SPEEDUP_AT_4 = 2.0
else:
    GRID = dict(q_values=[1, 2, 4, 8], banks=4, bank_latency=4,
                delay_rows=64, cycles=20_000, lanes=8)
    SHARD_LANES = 2          # 4 cells x 4 shards = 16 shards
    SHARD_DELAY = 0.75
    MIN_SPEEDUP_AT_4 = 3.0
READY_TIMEOUT_S = 120.0      # worker interpreters finish importing


def _spawn_workers(root, count):
    env = dict(os.environ, PYTHONPATH="src")
    if MODE == "overlap":
        env["REPRO_DISTRIB_SHARD_DELAY"] = str(SHARD_DELAY)
    return [subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "worker",
         "--dir", root, "--worker-id", f"bench-w{i}",
         "--lease-ttl", "30", "--poll", "0.05",
         "--wait-manifest", "120", "--idle-timeout", "120"],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for i in range(count)]


def _drain_with(workers: int) -> dict:
    """One measured drain: N warm workers, harvest-only coordinator."""
    root = tempfile.mkdtemp(prefix=f"scaleout_{workers}w_")
    procs = _spawn_workers(root, workers)
    try:
        # Start the clock only once every worker is warm (imports done,
        # waiting on the manifest): the measurement is the drain, not N
        # interpreter startups serialized on a small host.
        workers_dir = os.path.join(root, "workers")
        deadline = time.monotonic() + READY_TIMEOUT_S
        while True:
            ready = len([n for n in os.listdir(workers_dir)
                         if n.endswith(".ready")]) \
                if os.path.isdir(workers_dir) else 0
            if ready >= workers:
                break
            assert time.monotonic() < deadline, (
                f"only {ready}/{workers} workers ready after "
                f"{READY_TIMEOUT_S:g}s")
            time.sleep(0.05)
        start = time.perf_counter()
        campaign = SweepCampaign(root, fig6_grid(**GRID), seed=11,
                                 shard_lanes=SHARD_LANES)
        campaign.run_distributed(participate=False, poll=0.02,
                                 ttl=30.0, idle_timeout=300.0)
        elapsed = time.perf_counter() - start
        for proc in procs:
            proc.wait(timeout=120)
        rows = worker_status(root)
        shards = sum(w["completed"] for w in rows
                     if w["role"] == "worker")
        return {"workers": workers, "elapsed_s": elapsed,
                "shards": shards,
                "shards_per_s": shards / elapsed if elapsed else 0.0}
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        shutil.rmtree(root, ignore_errors=True)


def test_campaign_scaleout(benchmark):
    results = benchmark.pedantic(
        lambda: [_drain_with(n) for n in WORKER_COUNTS],
        rounds=1, iterations=1)

    by_n = {r["workers"]: r for r in results}
    base = by_n[1]["elapsed_s"]
    total_shards = by_n[1]["shards"]
    # Every fleet size drained the full grid.
    assert all(r["shards"] == total_shards for r in results)

    speedup4 = base / by_n[4]["elapsed_s"]
    assert speedup4 >= MIN_SPEEDUP_AT_4, (
        f"4-worker speedup {speedup4:.2f}x < {MIN_SPEEDUP_AT_4}x "
        f"(1w {base:.2f}s, 4w {by_n[4]['elapsed_s']:.2f}s)")

    cells = len(GRID["q_values"])
    lines = [
        f"work-stealing campaign drain, {cells} cells x "
        f"{total_shards // cells} shards = {total_shards} shards "
        f"({GRID['cycles']} cycles x {GRID['lanes']} lanes per cell)",
        f"mode={MODE} (host cores={CORES}"
        + (f", modeled shard latency {SHARD_DELAY}s"
           if MODE == "overlap" else "")
        + "), harvest-only coordinator, subprocess workers",
        "",
        f"{'workers':>7} {'wall s':>8} {'shards/s':>9} "
        f"{'speedup':>8} {'efficiency':>10}",
    ]
    for r in results:
        speedup = base / r["elapsed_s"]
        lines.append(
            f"{r['workers']:>7} {r['elapsed_s']:>8.2f} "
            f"{r['shards_per_s']:>9.2f} {speedup:>7.2f}x "
            f"{speedup / r['workers']:>9.0%}")
    lines.append("")
    lines.append(f"gate: >= {MIN_SPEEDUP_AT_4:g}x at 4 workers -> "
                 f"{speedup4:.2f}x")
    report("campaign_scaleout", "\n".join(lines))
