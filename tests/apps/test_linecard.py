"""Tests for the line-card co-simulation."""

import pytest

from repro.apps.linecard import LineCard
from repro.apps.packet_buffer import VPNMPacketBuffer
from repro.core import VPNMConfig, VPNMController
from repro.workloads.packets import Packet, packet_trace


def make_card(rate_gbps, seed=7, cells_per_queue=4096):
    controller = VPNMController(
        VPNMConfig(banks=32, queue_depth=8, delay_rows=32, hash_latency=0),
        seed=seed,
    )
    buffer = VPNMPacketBuffer(controller, num_queues=64,
                              cells_per_queue=cells_per_queue)
    return LineCard(buffer, line_rate_gbps=rate_gbps)


class TestLineCardBasics:
    def test_validation(self):
        buffer = VPNMPacketBuffer(
            VPNMController(VPNMConfig(hash_latency=0)), num_queues=4,
            cells_per_queue=64,
        )
        with pytest.raises(ValueError):
            LineCard(buffer, line_rate_gbps=0)
        with pytest.raises(ValueError):
            LineCard(buffer, line_rate_gbps=10, clock_mhz=0)

    def test_empty_trace(self):
        card = make_card(100)
        report = card.run([])
        assert report.packets_offered == 0
        assert report.cycles == 0

    def test_single_packet_round_trip(self):
        card = make_card(100)
        report = card.run([Packet(flow=0, size=1500, serial=0)])
        assert report.packets_delivered == 1
        assert report.bytes_delivered == 1500
        assert report.final_backlog == 0

    def test_wire_spacing_scales_with_rate(self):
        """The same trace takes roughly rate-proportionally less time."""
        trace = list(packet_trace(count=100, flows=32, seed=1))
        slow = make_card(40).run(trace)
        fast = make_card(160).run(trace)
        assert slow.cycles > fast.cycles * 2.5


class TestSustainedRates:
    def test_oc3072_sustained(self):
        """160 gbps: the Table 3 operating point, measured end to end."""
        card = make_card(160)
        report = card.run(packet_trace(count=300, flows=64, seed=3))
        assert report.sustained()
        assert report.stalls == 0
        assert report.packets_delivered == 300
        assert report.achieved_gbps(1000.0) > 140

    def test_gross_overload_detected(self):
        """400 gbps exceeds the one-request-per-cycle bound: the cell-op
        backlog grows without bound and goodput saturates."""
        card = make_card(400)
        report = card.run(packet_trace(count=300, flows=64, seed=3))
        assert not report.sustained()
        assert report.max_backlog > 500
        # Goodput caps near the 256 gbps accounting bound.
        assert report.achieved_gbps(1000.0) < 280

    def test_crossover_near_accounting_bound(self):
        """The measured saturation point lands where the accounting says
        (~256 gbps raw for 64 B cells at 1 GHz, less cell-padding loss)."""
        sustained = make_card(160).run(
            packet_trace(count=200, flows=64, seed=5)
        )
        saturated = make_card(320).run(
            packet_trace(count=200, flows=64, seed=5)
        )
        assert sustained.sustained()
        assert not saturated.sustained()
