"""Periodic occupancy snapshots for the scalar controller.

:class:`OccupancySampler` wraps a :class:`~repro.core.controller.
VPNMController` and, every ``stride`` interface cycles, records the
three structure occupancies the paper's stall analysis is built on —
per-bank access-queue depth, delay-storage rows in use, write-buffer
depth — plus bus-slot utilization over the sampling window.  The
samples become the same :class:`~repro.obs.summary.TelemetrySummary`
the vectorized batch engine produces, so one renderer serves both
paths.

Driving pattern::

    sampler = OccupancySampler(controller, stride=100)
    for request in workload:
        controller.step(request)
        sampler.tick()
    summary = sampler.summary()

or pass the sampler to :func:`repro.sim.runner.run_workload` which
ticks it once per cycle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.summary import TelemetrySummary


class OccupancySampler:
    """Stride-sampled occupancy time series for one controller run."""

    def __init__(self, controller, stride: int = 1000):
        if stride < 1:
            raise ValueError("sampling stride must be >= 1")
        self.controller = controller
        self.stride = stride
        self.sample_cycles: List[int] = []
        #: Per-sample per-bank arrays (lists of lists, bank-indexed).
        self.queue_depth: List[List[int]] = []
        self.delay_rows: List[List[int]] = []
        self.write_buffer: List[List[int]] = []
        #: Per-sample bus utilization over the window since the last
        #: sample (slots used / slots elapsed; None for an idle window).
        self.bus_utilization: List[Optional[float]] = []
        self._last_used = controller.bus.slots_used
        self._last_idled = controller.bus.slots_idled
        self._next_sample = controller.now

    def tick(self) -> bool:
        """Call once per interface cycle; samples when the stride elapses."""
        if self.controller.now < self._next_sample:
            return False
        self.sample()
        return True

    def sample(self) -> None:
        """Record one snapshot now, regardless of stride position."""
        controller = self.controller
        self.sample_cycles.append(controller.now)
        queues, rows, writes = [], [], []
        for bank in controller.banks:
            occupancy = bank.occupancy()
            queues.append(occupancy["queue"])
            rows.append(occupancy["delay_rows"])
            writes.append(occupancy["write_buffer"])
        self.queue_depth.append(queues)
        self.delay_rows.append(rows)
        self.write_buffer.append(writes)
        used = controller.bus.slots_used
        idled = controller.bus.slots_idled
        window = (used - self._last_used) + (idled - self._last_idled)
        self.bus_utilization.append(
            (used - self._last_used) / window if window else None)
        self._last_used, self._last_idled = used, idled
        self._next_sample = controller.now + self.stride

    @property
    def samples(self) -> int:
        return len(self.sample_cycles)

    def summary(self) -> TelemetrySummary:
        """Fold the samples (plus the controller's exact peak counters
        and stall breakdown) into a mergeable telemetry summary."""
        controller = self.controller
        stats = controller.stats
        banks = len(controller.banks)
        cycles = controller.now
        buckets = cycles // self.stride + 1
        out = TelemetrySummary(stride=self.stride, cycles=cycles, lanes=1)
        # Peaks come from the controller's exact high-water counters,
        # not the samples — sampling can only miss a peak, never see a
        # higher one.
        out.bank_queue_peak = stats.max_queue_occupancy
        out.delay_rows_peak = stats.max_delay_rows_used
        out.per_lane_queue_peak = [stats.max_queue_occupancy]
        out.per_lane_rows_peak = [stats.max_delay_rows_used]
        out.stall_reasons = dict(stats.stall_reasons)
        out.bucket_cycles = [b * self.stride for b in range(buckets)]
        out.queue_series = [-1] * buckets
        out.rows_series = [-1] * buckets
        out.bank_pressure = [[-1] * banks for _ in range(buckets)]
        for i, cycle in enumerate(self.sample_cycles):
            bucket = cycle // self.stride
            if bucket >= buckets:
                continue
            queue_max = max(self.queue_depth[i])
            rows_max = max(self.delay_rows[i])
            if queue_max > out.queue_series[bucket]:
                out.queue_series[bucket] = queue_max
            if rows_max > out.rows_series[bucket]:
                out.rows_series[bucket] = rows_max
            pressure = out.bank_pressure[bucket]
            for bank, depth in enumerate(self.queue_depth[i]):
                if depth > pressure[bank]:
                    pressure[bank] = depth
        return out
