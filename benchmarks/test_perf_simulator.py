"""Simulator performance: cycles per second of the two engines.

Not a paper artifact — this is the repository's own performance budget,
so regressions in the controller's hot path are caught.  The full
controller carries data and replies; the fast stall simulator models
occupancy only and is the engine behind the multi-million-cycle
validation runs.
"""

import random

from repro.core import VPNMConfig, VPNMController, read_request
from repro.sim.fastsim import FastStallSimulator

CYCLES_FULL = 20_000
CYCLES_FAST = 200_000


def test_perf_full_controller(benchmark):
    rng = random.Random(0)
    requests = [read_request(rng.getrandbits(32))
                for _ in range(CYCLES_FULL)]

    def run():
        ctrl = VPNMController(VPNMConfig(), seed=1)
        for request in requests:
            ctrl.step(request)
        return ctrl

    ctrl = benchmark(run)
    # The paper-default config stalls roughly once per 10^5 cycles, so a
    # couple of rejections in a 20k-cycle run are legitimate.
    assert ctrl.stats.reads_accepted >= CYCLES_FULL - 5


def test_perf_fast_simulator(benchmark):
    def run():
        sim = FastStallSimulator(VPNMConfig(), seed=1)
        return sim.run(CYCLES_FAST)

    result = benchmark(run)
    assert result.accepted + result.stalls == CYCLES_FAST
