"""Well-behaved traffic generators.

Each generator yields :class:`~repro.core.request.MemoryRequest` objects
(or ``None`` for idle cycles) and is infinite unless ``count`` is given —
callers slice with :func:`itertools.islice` or pass ``count``.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Optional

from repro.core.request import MemoryRequest
from repro.core.controller import read_request, write_request


def _bounded(iterator: Iterator, count: Optional[int]) -> Iterator:
    return iterator if count is None else itertools.islice(iterator, count)


def uniform_reads(
    address_bits: int = 32,
    count: Optional[int] = None,
    seed: int = 0,
) -> Iterator[MemoryRequest]:
    """Uniform random read addresses — the analytical model's assumption."""
    rng = random.Random(seed)

    def gen():
        while True:
            yield read_request(rng.getrandbits(address_bits))

    return _bounded(gen(), count)


def stride_reads(
    stride: int,
    start: int = 0,
    address_bits: int = 32,
    count: Optional[int] = None,
) -> Iterator[MemoryRequest]:
    """Constant-stride reads — the classic banked-memory pathology.

    Against a low-bits bank mapping, ``stride == banks`` pins every
    access on one bank; against the universal hash it behaves like
    uniform traffic (paper Section 2, citing Rau).
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    mask = (1 << address_bits) - 1

    def gen():
        address = start & mask
        while True:
            yield read_request(address)
            address = (address + stride) & mask

    return _bounded(gen(), count)


def zipf_reads(
    universe: int = 4096,
    exponent: float = 1.1,
    address_bits: int = 32,
    count: Optional[int] = None,
    seed: int = 0,
) -> Iterator[MemoryRequest]:
    """Zipf-skewed reads over a working set — models hot data structures.

    Heavy reuse stresses the merging queue: popular addresses should be
    coalesced into shared delay-storage rows rather than re-fetched.
    """
    if universe < 1:
        raise ValueError("universe must be >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = random.Random(seed)
    # Precompute the CDF once; universe is modest by construction.
    weights = [1.0 / (rank ** exponent) for rank in range(1, universe + 1)]
    total = sum(weights)
    cdf = list(itertools.accumulate(w / total for w in weights))
    # Spread the ranked items over the address space deterministically.
    spread = random.Random(seed + 1)
    addresses = [spread.getrandbits(address_bits) for _ in range(universe)]

    def gen():
        import bisect
        while True:
            rank = bisect.bisect_left(cdf, rng.random())
            yield read_request(addresses[min(rank, universe - 1)])

    return _bounded(gen(), count)


def mixed_read_write(
    read_fraction: float = 0.7,
    address_bits: int = 32,
    working_set: int = 65536,
    count: Optional[int] = None,
    seed: int = 0,
) -> Iterator[MemoryRequest]:
    """Random mix of reads and writes over a bounded working set."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = random.Random(seed)
    mask = (1 << address_bits) - 1

    def gen():
        serial = 0
        while True:
            address = rng.randrange(working_set) & mask
            if rng.random() < read_fraction:
                yield read_request(address)
            else:
                serial += 1
                yield write_request(address, f"w{serial}")

    return _bounded(gen(), count)


def burst_traffic(
    burst_length: int = 16,
    gap_length: int = 16,
    address_bits: int = 32,
    count: Optional[int] = None,
    seed: int = 0,
) -> Iterator[Optional[MemoryRequest]]:
    """Bursty arrivals: ``burst_length`` back-to-back reads, then idle.

    Yields ``None`` during gaps, modeling an interface that is not
    saturated every cycle (packet arrivals are bursty at sub-line rates).
    """
    if burst_length < 1 or gap_length < 0:
        raise ValueError("burst_length >= 1 and gap_length >= 0 required")
    rng = random.Random(seed)

    def gen():
        while True:
            for _ in range(burst_length):
                yield read_request(rng.getrandbits(address_bits))
            for _ in range(gap_length):
                yield None

    return _bounded(gen(), count)
