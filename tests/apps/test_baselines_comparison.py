"""Tests for the conventional baseline and the Table 3 comparison."""

import pytest

from repro.apps.baselines import ConventionalController
from repro.apps.comparison import (
    CFDS,
    NIKOLOGIANNIS,
    RADS,
    our_scheme_row,
    render_table3,
    table3,
)
from repro.core import VPNMConfig, VPNMController, read_request
from repro.workloads.generators import stride_reads, uniform_reads


class TestConventionalController:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConventionalController(banks=3)

    def test_friendly_traffic_fast_and_accepted(self):
        ctrl = ConventionalController(banks=8, bank_latency=4, queue_depth=8)
        for request in uniform_reads(address_bits=16, count=100, seed=1):
            ctrl.step(request)
        ctrl.drain()
        assert ctrl.stats.acceptance_rate > 0.95
        assert ctrl.stats.completions == ctrl.stats.accepted

    def test_variable_latency_is_the_point(self):
        """Unlike VPNM, completion latency varies with contention."""
        ctrl = ConventionalController(banks=4, bank_latency=10,
                                      queue_depth=8)
        latencies = set()
        completions = []
        # Two requests to the same bank: second waits for the first.
        for request in [read_request(0), read_request(4), read_request(8)]:
            completions.extend(ctrl.step(request))
        completions.extend(ctrl.drain())
        latencies = {c.latency for c in completions}
        assert len(latencies) > 1

    def test_stride_attack_collapses_acceptance(self):
        """stride == banks pins one bank; the interface backs up."""
        ctrl = ConventionalController(banks=32, bank_latency=20,
                                      queue_depth=8)
        for request in stride_reads(stride=32, count=500):
            ctrl.step(request)
        assert ctrl.stats.acceptance_rate < 0.15

    def test_write_read_round_trip(self):
        from repro.core import write_request
        ctrl = ConventionalController(banks=4, bank_latency=2)
        ctrl.step(write_request(5, "payload"))
        ctrl.drain()
        completions = []
        completions.extend(ctrl.step(read_request(5)))
        completions.extend(ctrl.drain())
        read_back = [c for c in completions if c.address == 5][-1]
        assert read_back.data == "payload"

    def test_vpnm_shrugs_off_the_same_stride(self):
        """Head-to-head: the attack that collapses the conventional
        controller leaves VPNM at full acceptance (ablation ABL1)."""
        vpnm = VPNMController(
            VPNMConfig(banks=32, hash_latency=0, stall_policy="drop"),
            seed=3,
        )
        for request in stride_reads(stride=32, count=500):
            vpnm.step(request)
        vpnm.drain()
        assert vpnm.stats.stalls == 0
        assert vpnm.stats.replies_delivered == 500


class TestTable3:
    def test_reported_rows_verbatim(self):
        assert NIKOLOGIANNIS.max_line_rate_gbps == 10.0
        assert NIKOLOGIANNIS.sram_bytes == 520 * 1024
        assert NIKOLOGIANNIS.interfaces == 64000
        assert RADS.max_line_rate_gbps == 40.0
        assert RADS.total_delay_ns == 53.0
        assert RADS.area_mm2 == 10.0
        assert CFDS.max_line_rate_gbps == 160.0
        assert CFDS.total_delay_ns == 10000.0
        assert CFDS.area_mm2 == 60.0

    def test_our_row_matches_paper_claims(self):
        """Paper Table 3, our row: 160 gbps, 320 KB, 41.9 mm2, 960 ns,
        4096 interfaces."""
        row = our_scheme_row()
        assert row.max_line_rate_gbps == 160.0
        assert row.sram_bytes == pytest.approx(320 * 1024, rel=0.1)
        assert row.area_mm2 == pytest.approx(41.9, rel=0.1)
        assert row.total_delay_ns == pytest.approx(960.0)
        assert row.interfaces == 4096

    def test_headline_comparisons_hold(self):
        """'our scheme requires about 35% less area, introduces ten
        times less latency, and can support about five times the number
        of interfaces compared to the CFDS scheme.'"""
        ours = our_scheme_row()
        assert ours.area_mm2 < CFDS.area_mm2 * 0.75
        assert ours.total_delay_ns * 10 <= CFDS.total_delay_ns
        assert ours.interfaces >= CFDS.interfaces * 4.5
        assert ours.max_line_rate_gbps == CFDS.max_line_rate_gbps

    def test_table_renders(self):
        text = render_table3()
        assert "CFDS" in text and "VPNM" in text
        assert len(table3()) == 4
        # '-' cells render as dashes
        assert " - " in text or text.count("-") >= 2
