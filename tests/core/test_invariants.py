"""Property-based invariants of the virtual pipeline.

These tests drive the controller with randomized mixed workloads and
check the contract the paper promises, against an oracle:

1. every accepted read replies at exactly ``t + D``;
2. replies arrive in acceptance order (pipeline semantics);
3. read data equals the latest write accepted before the read (the
   flat-memory illusion);
4. no reply is ever delivered before its DRAM data arrived
   (``late_replies == 0``);
5. conservation: after draining, every accepted read got exactly one
   reply and the delay storage is empty.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    VPNMConfig,
    VPNMController,
    read_request,
    write_request,
)

# A workload step: (is_read, address, payload-id)
workload_steps = st.lists(
    st.tuples(st.booleans(), st.integers(0, 63), st.integers(0, 10**6)),
    min_size=1,
    max_size=200,
)

configs = st.sampled_from([
    dict(banks=1, bank_latency=3, queue_depth=2, delay_rows=4),
    dict(banks=2, bank_latency=4, queue_depth=3, delay_rows=6),
    dict(banks=4, bank_latency=4, queue_depth=4, delay_rows=8),
    dict(banks=4, bank_latency=6, queue_depth=2, delay_rows=4,
         bus_scaling=1.5),
    dict(banks=8, bank_latency=5, queue_depth=4, delay_rows=16,
         bus_scaling=1.25),
    dict(banks=4, bank_latency=4, queue_depth=4, delay_rows=8,
         skip_idle_slots=False),
])


def run_workload(params, steps, seed):
    """Feed a workload; returns (controller, accepted reads, replies, oracle)."""
    config = VPNMConfig(address_bits=16, hash_latency=0, **params)
    ctrl = VPNMController(config, seed=seed)
    memory_oracle = {}
    expected_data = {}  # request_id -> data the reply must carry
    accepted_reads = []
    replies = []
    for is_read, address, payload in steps:
        if is_read:
            request = read_request(address)
            result = ctrl.step(request)
            if result.accepted:
                accepted_reads.append(request)
                expected_data[request.request_id] = memory_oracle.get(address)
        else:
            request = write_request(address, payload)
            result = ctrl.step(request)
            if result.accepted:
                memory_oracle[address] = payload
        replies.extend(result.replies)
    replies.extend(ctrl.drain())
    return ctrl, accepted_reads, replies, expected_data


@given(params=configs, steps=workload_steps, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_virtual_pipeline_contract(params, steps, seed):
    ctrl, accepted_reads, replies, expected_data = run_workload(
        params, steps, seed
    )
    d = ctrl.normalized_delay

    # 1. exact latency
    assert all(r.latency == d for r in replies)

    # 2. in-order delivery
    completion_cycles = [r.completed_at for r in replies]
    assert completion_cycles == sorted(completion_cycles)

    # 3. flat-memory data semantics
    for reply in replies:
        assert reply.data == expected_data[reply.request_id], (
            f"read of {reply.address:#x} returned {reply.data!r}, "
            f"oracle says {expected_data[reply.request_id]!r}"
        )

    # 4. no premature replies
    assert ctrl.stats.late_replies == 0

    # 5. conservation
    assert len(replies) == len(accepted_reads)
    assert {r.request_id for r in replies} == {
        q.request_id for q in accepted_reads
    }
    assert all(b.delay_storage.rows_used == 0 for b in ctrl.banks)
    assert ctrl.idle()


@given(steps=workload_steps, seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_drop_and_stall_policies_agree_on_accepted_work(steps, seed):
    """The two stall policies accept/reject identically; only the
    bookkeeping differs."""
    base = dict(banks=2, bank_latency=4, queue_depth=2, delay_rows=4)
    results = {}
    for policy in ("stall", "drop"):
        ctrl, accepted, replies, _ = run_workload(
            dict(base, stall_policy=policy), steps, seed
        )
        results[policy] = (
            [q.request_id for q in accepted],
            ctrl.stats.stalls,
        )
    # request_ids differ between runs (global counter), so compare counts
    # and positions instead.
    assert len(results["stall"][0]) == len(results["drop"][0])
    assert results["stall"][1] == results["drop"][1]


@given(
    addresses=st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=100),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_merging_never_changes_data_only_access_count(addresses, seed):
    """With and without redundancy, the data returned is identical; the
    number of DRAM accesses shrinks to the number of distinct addresses
    in flight."""
    config = VPNMConfig(banks=4, bank_latency=4, queue_depth=8,
                        delay_rows=32, address_bits=16, hash_latency=0)
    ctrl = VPNMController(config, seed=seed)
    replies = []
    for address in addresses:
        result = ctrl.step(read_request(address, tag=address))
        replies.extend(result.replies)
    replies.extend(ctrl.drain())
    delivered = [r for r in replies]
    assert len(delivered) == ctrl.stats.reads_accepted
    assert all(r.data is None for r in delivered)  # nothing ever written
    # Each *distinct* address needs at least one access, and merging can
    # never produce more accesses than accepted reads.
    assert ctrl.device.total_accesses() <= ctrl.stats.reads_accepted
    assert ctrl.device.total_accesses() >= min(1, len(addresses))


def test_sustained_full_rate_uniform_traffic_is_stall_free():
    """The headline behaviour: the default config sustains one request
    per cycle of uniform random traffic with no stalls for 50k cycles."""
    import random
    ctrl = VPNMController(VPNMConfig(), seed=1234)
    rng = random.Random(99)
    for _ in range(50_000):
        ctrl.step(read_request(rng.getrandbits(32)))
    ctrl.drain()
    assert ctrl.stats.stalls == 0
    assert ctrl.stats.late_replies == 0
    assert ctrl.stats.replies_delivered == 50_000
    # The bus had headroom: utilization strictly below 1.
    assert ctrl.bus.utilization < 1.0
