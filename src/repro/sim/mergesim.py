"""Redundancy-aware fast lane model: CAM merging without objects.

:class:`~repro.sim.fastsim.FastStallSimulator` deliberately excludes
read merging (fresh-address traffic only), which left the merging
ablation bench running the full object-per-request controller.  This
model closes that gap: it replicates the controller's *address-level*
occupancy dynamics — CAM lookup, per-row saturating reference counters,
row release on last reference, and both bus arbitration modes — using
plain dicts and lists, with the address→(bank, line) mapping memoized
(the universal hash is pure, and redundancy-heavy streams revisit the
same few addresses by construction).

Scope: read-only traffic under the ``drop`` stall policy, the regime of
the merging ablation.  The differential test
(``tests/sim/test_mergesim_differential.py``) pins its accounting —
accepted/merged counts, per-reason stalls, issued bank accesses —
against the full controller, cycle for cycle, on flood, Zipf and
uniform streams with merging both on and off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import VPNMConfig
from repro.hashing.mapping import AddressMapper
from repro.sim import kernels as kernels_pkg

# Row cells (a plain list is measurably faster than attributes here).
_COUNTER, _PENDING, _BANK, _LINE = range(4)


@dataclass
class MergeRunResult:
    """Accounting of one merging-lane run (matches ControllerStats names)."""

    cycles: int
    offered: int
    reads_accepted: int
    reads_merged: int
    delay_storage_stalls: int
    bank_queue_stalls: int
    accesses_issued: int

    @property
    def stalls(self) -> int:
        return self.delay_storage_stalls + self.bank_queue_stalls

    @property
    def dropped(self) -> int:
        """Drop policy: every stalled offer is an abandoned request."""
        return self.stalls

    @property
    def stall_reasons(self) -> dict:
        reasons = {}
        if self.delay_storage_stalls:
            reasons["delay_storage"] = self.delay_storage_stalls
        if self.bank_queue_stalls:
            reasons["bank_queue"] = self.bank_queue_stalls
        return reasons


class MergingLaneSimulator:
    """Address-level fast model of the merging (delay storage) dynamics."""

    def __init__(self, config: VPNMConfig, seed: Optional[int] = 0):
        if config.stall_policy != "drop":
            raise ValueError(
                "the merging lane model implements the drop policy only")
        self.config = config
        self.mapper = AddressMapper(
            address_bits=config.address_bits,
            banks=config.banks,
            scheme=config.hash_scheme,
            seed=seed,
        )
        self._map_cache: Dict[int, Tuple[int, int]] = {}
        self._max_count = (1 << config.counter_bits) - 1
        ratio = Fraction(config.bus_scaling).limit_denominator(1_000)
        self._num, self._den = ratio.numerator, ratio.denominator

        banks = config.banks
        #: (bank, line) -> row for CAM-visible rows (merging on).
        self._cam: Dict[Tuple[int, int], list] = {}
        self._rows_used = [0] * banks
        self._queues: List[deque] = [deque() for _ in range(banks)]
        self._bank_free_at = [0] * banks
        self._ready: deque = deque()
        self._enqueued = [False] * banks
        #: Release ring: slot t % D holds the row whose reference drops
        #: at t (at most one accept per cycle -> one row per slot).
        self._release: List[Optional[list]] = [None] * config.normalized_delay
        self._slots_consumed = 0
        self._now = 0
        self._accounting = MergeRunResult(0, 0, 0, 0, 0, 0, 0)

    # -- main loop -------------------------------------------------------

    def run(self, addresses: Iterable[Optional[int]]) -> MergeRunResult:
        """One interface cycle per item; ``None`` items are idle cycles.

        Can be called repeatedly; the accounting accumulates (matching
        a controller driven by consecutive ``run_workload`` calls).
        """
        acc = self._accounting
        for address in addresses:
            self._step(address, acc)
        acc.cycles = self._now
        return acc

    def drain(self) -> MergeRunResult:
        """Idle-cycle until every row is released and every queue empty."""
        queued = sum(len(q) for q in self._queues)
        limit = (self.config.normalized_delay + 1
                 + (queued + 1) * max(self.config.bank_latency,
                                      self.config.banks))
        acc = self._accounting
        for _ in range(limit):
            if not any(self._rows_used) and not any(self._queues):
                break
            self._step(None, acc)
        acc.cycles = self._now
        return acc

    def _step(self, address: Optional[int], acc: MergeRunResult) -> None:
        now = self._now
        config = self.config
        ring_slot = now % config.normalized_delay

        # 1. take out (but do not yet apply) the reference drop due now:
        #    the controller accepts before delivering, so this cycle's
        #    arrival still sees the row occupied.
        freed = self._release[ring_slot]
        self._release[ring_slot] = None

        # 2. arrival
        if address is not None:
            acc.offered += 1
            mapping = self._map_cache.get(address)
            if mapping is None:
                mapped = self.mapper.map(address)
                mapping = (mapped.bank, mapped.line)
                self._map_cache[address] = mapping
            bank, line = mapping
            row = self._cam.get(mapping) if config.merge_reads else None
            if row is not None:
                # CAM hit: merge, or stall on a saturated counter.
                if row[_COUNTER] >= self._max_count:
                    acc.delay_storage_stalls += 1
                else:
                    row[_COUNTER] += 1
                    acc.reads_accepted += 1
                    acc.reads_merged += 1
                    self._release[ring_slot] = row
            elif self._rows_used[bank] >= config.delay_rows:
                acc.delay_storage_stalls += 1
            else:
                # In-service access still holds its Q slot (see
                # BankController._queue_has_room).
                busy = 1 if self._bank_free_at[bank] > self._slots_consumed \
                    else 0
                if len(self._queues[bank]) + busy >= config.queue_depth:
                    acc.bank_queue_stalls += 1
                else:
                    row = [1, True, bank, line]
                    self._rows_used[bank] += 1
                    if config.merge_reads:
                        self._cam[mapping] = row
                    self._queues[bank].append(row)
                    acc.reads_accepted += 1
                    self._release[ring_slot] = row
                    if not self._enqueued[bank]:
                        self._enqueued[bank] = True
                        self._ready.append(bank)

        # 3. apply the reference drop (reply delivered after acceptance)
        if freed is not None:
            freed[_COUNTER] -= 1
            if freed[_COUNTER] == 0 and not freed[_PENDING]:
                self._free_row(freed)

        # 4. memory-bus slots of this interface cycle
        target = (now + 1) * self._num // self._den
        strict = not config.skip_idle_slots
        queues = self._queues
        bank_free_at = self._bank_free_at
        while self._slots_consumed < target:
            slot = self._slots_consumed
            self._slots_consumed += 1
            if strict:
                bank = slot % config.banks
                if queues[bank] and bank_free_at[bank] <= slot:
                    self._issue(bank, slot, acc)
                continue
            for _ in range(len(self._ready)):
                bank = self._ready.popleft()
                if not queues[bank]:
                    self._enqueued[bank] = False
                    continue
                if bank_free_at[bank] <= slot:
                    self._issue(bank, slot, acc)
                    if queues[bank]:
                        self._ready.append(bank)
                    else:
                        self._enqueued[bank] = False
                    break
                self._ready.append(bank)

        self._now += 1

    def _issue(self, bank: int, slot: int, acc: MergeRunResult) -> None:
        row = self._queues[bank].popleft()
        row[_PENDING] = False
        self._bank_free_at[bank] = slot + self.config.bank_latency
        acc.accesses_issued += 1
        if row[_COUNTER] == 0:
            # Every reply already delivered (cannot happen on a valid
            # configuration, mirrored from DelayStorageBuffer.fill).
            self._free_row(row)

    def _free_row(self, row: list) -> None:
        self._rows_used[row[_BANK]] -= 1
        if self.config.merge_reads:
            self._cam.pop((row[_BANK], row[_LINE]), None)


class CompiledMergingLaneSimulator:
    """Same dynamics as :class:`MergingLaneSimulator`, compiled kernel.

    The CAM loop runs in :func:`repro.sim.kernels.pyloops.
    run_merge_events` (via the numba or cc backend): the CAM is a dense
    ``key id -> row id`` array, rows a free-list-managed
    struct-of-arrays pool, and the per-bank FIFOs fixed-capacity
    rings.  The only Python-level work per event is the memoized
    address → (bank, dense key) pre-mapping — the universal hash is
    pure and redundancy-heavy streams revisit the same addresses, so
    the cache hit path is one dict probe.

    Public API (``run``/``drain``/accounting accumulation) matches the
    interpreter model exactly; ``tests/sim/test_kernels.py`` pins the
    two bit-identical on flood, Zipf and uniform streams.  Construct
    through :func:`make_merging_simulator` so callers degrade to the
    interpreter model when no compiled backend exists.
    """

    def __init__(self, config: VPNMConfig, seed: Optional[int] = 0,
                 kernels: Optional[object] = None):
        if config.stall_policy != "drop":
            raise ValueError(
                "the merging lane model implements the drop policy only")
        if kernels is None:
            kernels, _ = kernels_pkg.compiled_kernels()
        if kernels is None:
            raise RuntimeError(
                "no compiled kernel backend; use MergingLaneSimulator")
        self.config = config
        self._kernels = kernels
        self.mapper = AddressMapper(
            address_bits=config.address_bits,
            banks=config.banks,
            scheme=config.hash_scheme,
            seed=seed,
        )
        #: address -> (bank, dense key id); key ids number the distinct
        #: (bank, line) pairs in first-seen order.
        self._map_cache: Dict[int, Tuple[int, int]] = {}
        self._key_ids: Dict[Tuple[int, int], int] = {}
        self._max_count = (1 << config.counter_bits) - 1
        ratio = Fraction(config.bus_scaling).limit_denominator(1_000)
        self._num, self._den = ratio.numerator, ratio.denominator

        banks = config.banks
        # Live rows are bounded by the per-bank admission check:
        # rows_used[bank] < delay_rows at every accept.
        max_rows = banks * config.delay_rows + 1
        queue_cap = config.queue_depth + 1
        self._cam_row = np.full(1, -1, dtype=np.int64)
        self._rows_used = np.zeros(banks, dtype=np.int64)
        self._row_counter = np.zeros(max_rows, dtype=np.int64)
        self._row_pending = np.zeros(max_rows, dtype=np.int64)
        self._row_bank = np.zeros(max_rows, dtype=np.int64)
        self._row_key = np.zeros(max_rows, dtype=np.int64)
        self._free_stack = np.arange(max_rows, dtype=np.int64)
        self._queues = np.zeros((banks, queue_cap), dtype=np.int64)
        self._q_head = np.zeros(banks, dtype=np.int64)
        self._q_size = np.zeros(banks, dtype=np.int64)
        self._bank_free_at = np.zeros(banks, dtype=np.int64)
        self._enqueued = np.zeros(banks, dtype=np.int64)
        self._ready = np.zeros(banks, dtype=np.int64)
        self._release = np.full(config.normalized_delay, -1, dtype=np.int64)
        # [now, slots_consumed, ready_head, ready_size, free_top]
        self._state = np.array([0, 0, 0, 0, max_rows], dtype=np.int64)
        self._counts = np.zeros(6, dtype=np.int64)

    def _map_events(self, addresses) -> Tuple[np.ndarray, np.ndarray]:
        ev_bank = np.empty(len(addresses), dtype=np.int32)
        ev_key = np.empty(len(addresses), dtype=np.int32)
        cache = self._map_cache
        key_ids = self._key_ids
        for i, address in enumerate(addresses):
            if address is None:
                ev_bank[i] = -1
                ev_key[i] = 0
                continue
            mapping = cache.get(address)
            if mapping is None:
                mapped = self.mapper.map(address)
                pair = (mapped.bank, mapped.line)
                key = key_ids.get(pair)
                if key is None:
                    key = len(key_ids)
                    key_ids[pair] = key
                mapping = (mapped.bank, key)
                cache[address] = mapping
            ev_bank[i] = mapping[0]
            ev_key[i] = mapping[1]
        if len(key_ids) > self._cam_row.shape[0]:
            grown = np.full(max(len(key_ids), 2 * self._cam_row.shape[0]),
                            -1, dtype=np.int64)
            grown[:self._cam_row.shape[0]] = self._cam_row
            self._cam_row = grown
        return ev_bank, ev_key

    def _run_events(self, ev_bank: np.ndarray, ev_key: np.ndarray) -> None:
        config = self.config
        self._kernels.run_merge_events(
            ev_bank, ev_key, self._num, self._den, config.bank_latency,
            config.normalized_delay, config.queue_depth, config.delay_rows,
            self._max_count, 1 if config.merge_reads else 0,
            0 if config.skip_idle_slots else 1,
            self._cam_row, self._rows_used, self._row_counter,
            self._row_pending, self._row_bank, self._row_key,
            self._free_stack, self._queues, self._q_head, self._q_size,
            self._bank_free_at, self._enqueued, self._ready,
            self._release, self._state, self._counts)

    def _accounting(self) -> MergeRunResult:
        counts = self._counts
        return MergeRunResult(
            cycles=int(self._state[0]),
            offered=int(counts[0]),
            reads_accepted=int(counts[1]),
            reads_merged=int(counts[2]),
            delay_storage_stalls=int(counts[3]),
            bank_queue_stalls=int(counts[4]),
            accesses_issued=int(counts[5]),
        )

    def run(self, addresses: Iterable[Optional[int]]) -> MergeRunResult:
        """One interface cycle per item; ``None`` items are idle cycles."""
        ev_bank, ev_key = self._map_events(list(addresses))
        self._run_events(ev_bank, ev_key)
        return self._accounting()

    def drain(self) -> MergeRunResult:
        """Idle-cycle until every row is released and every queue empty.

        Steps one idle cycle per kernel call so the quiesce check (and
        therefore the final cycle count) lands on exactly the same
        cycle as the interpreter model's per-step loop.
        """
        queued = int(self._q_size.sum())
        limit = (self.config.normalized_delay + 1
                 + (queued + 1) * max(self.config.bank_latency,
                                      self.config.banks))
        idle_bank = np.full(1, -1, dtype=np.int32)
        idle_key = np.zeros(1, dtype=np.int32)
        for _ in range(limit):
            if not self._rows_used.any() and not self._q_size.any():
                break
            self._run_events(idle_bank, idle_key)
        return self._accounting()


def make_merging_simulator(config: VPNMConfig, seed: Optional[int] = 0,
                           kernel: str = "auto"):
    """Merging-lane model factory with compiled-kernel selection.

    ``kernel="auto"`` returns the compiled model when a backend
    (numba or cc) is available and the interpreter model otherwise;
    ``"jit"`` insists on a compiled backend (RuntimeError without
    one); ``"python"`` always returns the interpreter model.
    """
    if kernel not in ("auto", "jit", "python"):
        raise ValueError(f"unknown merge kernel {kernel!r}")
    if kernel == "python":
        return MergingLaneSimulator(config, seed=seed)
    kernels, _ = kernels_pkg.compiled_kernels()
    if kernels is not None:
        return CompiledMergingLaneSimulator(config, seed=seed,
                                            kernels=kernels)
    if kernel == "jit":
        raise RuntimeError("no compiled kernel backend available")
    return MergingLaneSimulator(config, seed=seed)
