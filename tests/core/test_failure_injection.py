"""Failure injection: broken schedulers and hostile configurations.

The structural checks in the DRAM device and the reply path exist to
catch scheduler bugs; these tests *inject* such bugs and assert the
system fails loudly instead of silently corrupting timing results.
"""

import pytest

from repro.core import (
    VPNMConfig,
    VPNMController,
    read_request,
)
from repro.core.bank_controller import BankController
from repro.core.exceptions import CapacityError, ConfigurationError
from repro.dram.bank import BankBusyError
from repro.dram.device import BusConflictError, DRAMDevice
from repro.dram.timing import DRAMTiming


class TestBrokenSchedulers:
    def make_parts(self, banks=2, latency=10):
        config = VPNMConfig(banks=banks, bank_latency=latency,
                            queue_depth=4, delay_rows=8, bus_scaling=1.0,
                            hash_latency=0, address_bits=16)
        device = DRAMDevice(DRAMTiming("t", banks, latency, 100.0))
        controllers = [BankController(i, config, config.counter_bits)
                       for i in range(banks)]
        return config, device, controllers

    def test_double_issue_same_cycle_caught(self):
        _, device, (bank0, bank1) = self.make_parts()
        bank0.try_accept_read(1)
        bank1.try_accept_read(2)
        bank0.issue_next(device, mem_now=0)
        with pytest.raises(BusConflictError):
            bank1.issue_next(device, mem_now=0)

    def test_issue_to_busy_bank_caught(self):
        _, device, (bank0, _) = self.make_parts(latency=10)
        bank0.try_accept_read(1)
        bank0.try_accept_read(2)
        bank0.issue_next(device, mem_now=0)
        with pytest.raises(BankBusyError):
            bank0.issue_next(device, mem_now=5)

    def test_time_reversal_caught(self):
        _, device, (bank0, bank1) = self.make_parts()
        bank0.try_accept_read(1)
        bank1.try_accept_read(2)
        bank0.issue_next(device, mem_now=10)
        with pytest.raises(BusConflictError):
            bank1.issue_next(device, mem_now=3)

    def test_queue_overflow_bypass_caught(self):
        """Pushing past capacity without the stall check is a bug the
        structure itself rejects."""
        _, _, (bank0, _) = self.make_parts()
        for line in range(4):
            bank0.access_queue.push_read(line)
        with pytest.raises(CapacityError):
            bank0.access_queue.push_read(99)


class TestLatencyViolationDetection:
    def test_insufficient_manual_delay_is_rejected_up_front(self):
        """A D below the provable completion bound cannot be configured."""
        with pytest.raises(ConfigurationError):
            VPNMConfig(banks=4, bank_latency=10, queue_depth=4,
                       bus_scaling=1.0, hash_latency=0, normalized_delay=20)

    def test_late_reply_counter_detects_injected_violation(self):
        """Force a data-not-ready delivery by tampering with a row's
        ready time; the reply path must count it, not crash."""
        ctrl = VPNMController(
            VPNMConfig(banks=2, bank_latency=4, queue_depth=2, delay_rows=4,
                       bus_scaling=1.0, hash_latency=0, address_bits=16),
            seed=2,
        )
        result = ctrl.step(read_request(7))
        assert result.accepted
        # Sabotage: pretend the DRAM data will only be ready far in the
        # future (as a scheduling bug would cause).
        bank = ctrl.mapper.bank_of(7)
        ctrl.run_idle(5)  # let the access issue and fill the row
        for row in ctrl.banks[bank].delay_storage.rows:
            if row.in_use:
                row.data_ready_at = 10**9
        ctrl.drain()
        assert ctrl.stats.late_replies == 1

    def test_healthy_runs_never_count_late_replies(self):
        import random
        rng = random.Random(0)
        ctrl = VPNMController(
            VPNMConfig(banks=8, bank_latency=5, queue_depth=4,
                       delay_rows=16, hash_latency=0, address_bits=16),
            seed=3,
        )
        for _ in range(3000):
            ctrl.step(read_request(rng.getrandbits(16)))
        ctrl.drain()
        assert ctrl.stats.late_replies == 0


class TestHostileConfigurations:
    def test_minimum_viable_config(self):
        """B=1, Q=1, K=1: the degenerate single-everything system still
        upholds the contract (serially)."""
        ctrl = VPNMController(
            VPNMConfig(banks=1, bank_latency=2, queue_depth=1, delay_rows=1,
                       bus_scaling=1.0, hash_latency=0, address_bits=8),
            seed=4,
        )
        d = ctrl.normalized_delay
        accepted = 0
        replies = []
        for address in range(40):
            result = ctrl.step(read_request(address % 256))
            replies.extend(result.replies)
            accepted += result.accepted
        replies.extend(ctrl.drain())
        assert len(replies) == accepted
        assert all(r.latency == d for r in replies)

    def test_saturated_config_stays_consistent(self):
        """Utilization > 1 (impossible load): massive stalls, but every
        accepted request still completes correctly."""
        import random
        rng = random.Random(5)
        ctrl = VPNMController(
            VPNMConfig(banks=2, bank_latency=16, queue_depth=2,
                       delay_rows=4, bus_scaling=1.0, hash_latency=0,
                       address_bits=16, stall_policy="drop"),
            seed=6,
        )
        replies = []
        for _ in range(2000):
            result = ctrl.step(read_request(rng.getrandbits(16)))
            replies.extend(result.replies)
        replies.extend(ctrl.drain())
        assert ctrl.stats.stalls > 500
        assert len(replies) == ctrl.stats.reads_accepted
        assert all(r.latency == ctrl.normalized_delay for r in replies)
        assert ctrl.stats.late_replies == 0
