"""Prometheus text-format rendering of a metrics snapshot.

Turns a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` dict (plus,
optionally, the service's ``describe()`` info digest) into the
Prometheus exposition text format, so a running ``repro serve
--listen`` instance can be scraped through the socket control channel's
``metrics`` op (``repro obs serve-metrics``).

Naming: dotted instrument paths map to ``repro_``-prefixed underscore
names (``tenant.queue_depth`` -> ``repro_tenant_queue_depth``); vectors
become ``{index="i"}`` label sets; histograms render the standard
cumulative ``_bucket{le=...}`` series plus ``_count``.  Gauges also
expose their high-water mark as ``<name>_peak``.

No Prometheus client library — the text format is five line shapes and
this repo takes no new dependencies.
"""

from __future__ import annotations

from typing import List, Optional


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _num(value) -> str:
    # Integral floats render as ints: Prometheus accepts both, ints diff
    # cleaner in tests and CI logs.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def render_prometheus(snapshot: dict, info: Optional[dict] = None) -> str:
    """Render a metrics snapshot (and optional service info) as text."""
    lines: List[str] = []

    def emit(kind: str, name: str, entries) -> None:
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in entries:
            lines.append(f"{name}{labels} {_num(value)}")

    for dotted in sorted(snapshot):
        entry = snapshot[dotted]
        name = _prom_name(dotted)
        kind = entry.get("type")
        if kind == "counter":
            emit("counter", name, [("", entry["value"])])
        elif kind == "gauge":
            emit("gauge", name, [("", entry["value"])])
            emit("gauge", name + "_peak", [("", entry["peak"])])
        elif kind == "counter_vector":
            emit("counter", name,
                 [(f'{{index="{i}"}}', v)
                  for i, v in enumerate(entry["values"])])
        elif kind == "gauge_vector":
            emit("gauge", name,
                 [(f'{{index="{i}"}}', v)
                  for i, v in enumerate(entry["values"])])
            emit("gauge", name + "_peak",
                 [(f'{{index="{i}"}}', v)
                  for i, v in enumerate(entry["peaks"])])
        elif kind == "histogram":
            buckets = entry["buckets"]
            counts = entry["counts"]
            cumulative = 0
            rows = []
            for bound, count in zip(buckets, counts):
                cumulative += count
                rows.append((f'{{le="{_num(float(bound))}"}}', cumulative))
            cumulative += counts[-1]
            rows.append(('{le="+Inf"}', cumulative))
            emit("histogram", name + "_bucket", rows)
            lines.append(f"{name}_count {cumulative}")

    if info is not None:
        lines.append("# TYPE repro_service_cycle counter")
        lines.append(f"repro_service_cycle {info.get('cycle', 0)}")

        def tenant_rows(metric: str, kind: str, getter) -> None:
            rows = []
            for tenant_name in sorted(info.get("tenants", {})):
                value = getter(info["tenants"][tenant_name])
                if value is None:
                    continue
                rows.append((f'{{tenant="{tenant_name}"}}', value))
            if rows:
                emit(kind, "repro_tenant_" + metric, rows)

        tenant_rows("queue_depth", "gauge", lambda t: t["queue_depth"])
        tenant_rows("in_flight", "gauge", lambda t: t["in_flight"])
        tenant_rows("shed", "gauge", lambda t: int(t["shed"]))
        tenant_rows("backpressured", "gauge",
                    lambda t: int(t["backpressured"]))
        tenant_rows("slo_p99_rolling", "gauge",
                    lambda t: t.get("slo", {}).get("p99_rolling"))
        tenant_rows("slo_breached", "gauge",
                    lambda t: (int(t["slo"]["breached"])
                               if "slo" in t else None))
        tenant_rows("slo_breaches", "counter",
                    lambda t: t.get("slo", {}).get("breaches"))

    return "\n".join(lines) + "\n"
