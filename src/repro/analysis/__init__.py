"""The paper's Mean-Time-to-Stall mathematics (Section 5).

- :mod:`~repro.analysis.delay_buffer_stall` — Section 5.1's closed-form
  combinatorial bound for delay-storage-buffer overflow.
- :mod:`~repro.analysis.markov` — Section 5.2's absorbing Markov chain
  for bank-access-queue overflow, solved exactly (hitting times) instead
  of by matrix powering, which also lifts the paper's B < 128 memory
  limitation.
- :mod:`~repro.analysis.combine` — system-level MTS combining both
  mechanisms, plus cycle/time conversions.
- :mod:`~repro.analysis.pareto` — Pareto-frontier utilities for the
  Section 5.3 design sweep.
- :mod:`~repro.analysis.confidence` — binomial (Wilson) error bars for
  simulated stall counts, used by the batch MTS campaigns.
- :mod:`~repro.analysis.overlay` — empirical campaign points (with
  Wilson error bars) placed on the analytical Figure 4/6 curves, plus
  the predicted-vs-simulated comparison table.
"""

from repro.analysis.confidence import (
    BinomialInterval,
    mts_interval,
    stall_probability_interval,
    wilson_interval,
)
from repro.analysis.birthday import (
    collision_probability,
    expected_accesses_to_first_collision,
    no_collision_probability,
)
from repro.analysis.combine import (
    combined_mts,
    mts_seconds,
    mts_to_human,
    system_mts,
)
from repro.analysis.delay_buffer_stall import (
    delay_buffer_mts,
    log10_delay_buffer_mts,
    stall_window_probability,
)
from repro.analysis.markov import (
    BankQueueChain,
    bank_queue_mts,
    build_transition_matrix,
)
from repro.analysis.overlay import (
    OverlayPoint,
    coverage_summary,
    overlay_point,
    render_overlay_chart,
    render_overlay_table,
)
from repro.analysis.pareto import ParetoPoint, pareto_frontier

__all__ = [
    "BankQueueChain",
    "BinomialInterval",
    "OverlayPoint",
    "ParetoPoint",
    "bank_queue_mts",
    "build_transition_matrix",
    "collision_probability",
    "combined_mts",
    "coverage_summary",
    "expected_accesses_to_first_collision",
    "no_collision_probability",
    "delay_buffer_mts",
    "log10_delay_buffer_mts",
    "mts_interval",
    "mts_seconds",
    "mts_to_human",
    "overlay_point",
    "pareto_frontier",
    "render_overlay_chart",
    "render_overlay_table",
    "stall_probability_interval",
    "stall_window_probability",
    "system_mts",
    "wilson_interval",
]
