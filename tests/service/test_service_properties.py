"""Property tests for the service invariants (Hypothesis).

Three contracts from the issue, each over randomized fleets, schedules
and configurations:

* **Request conservation** — every submission lands in exactly one
  ledger bucket, and once the service quiesces,
  ``admitted == completed + dropped`` (nothing in flight, nothing
  queued, nothing lost).
* **Token-bucket window bound** — a tenant with contract (rate, burst)
  is never admitted more than ``burst + ceil(rate * W)`` requests in
  *any* window of W cycles, for every window of the run.
* **No starvation** — a tenant submitting under its contracted rate
  alongside a saturating unlimited tenant is never throttled, never
  backpressured, and completes everything it submits.
"""

import math
import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VPNMConfig
from repro.service import ADMITTED, ServiceCore, TenantSpec, TokenBucket

COMMON = dict(max_examples=30, deadline=None)


def small_config(stall_policy):
    return VPNMConfig(banks=2, bank_latency=4, queue_depth=2, delay_rows=4,
                      hash_latency=0, stall_policy=stall_policy,
                      address_bits=16)


specs_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(),
                  st.floats(min_value=0.05, max_value=1.0,
                            allow_nan=False)),       # rate
        st.integers(min_value=1, max_value=8),       # burst
        st.integers(min_value=1, max_value=16),      # queue_limit
    ),
    min_size=1, max_size=4,
)


class TestRequestConservation:
    @given(specs=specs_strategy,
           stall_policy=st.sampled_from(["stall", "drop"]),
           schedule_seed=st.integers(min_value=0, max_value=2 ** 16),
           load=st.floats(min_value=0.1, max_value=1.0, allow_nan=False))
    @settings(**COMMON)
    def test_every_submission_lands_in_exactly_one_bucket(
            self, specs, stall_policy, schedule_seed, load):
        tenants = [TenantSpec(f"t{i}", rate=rate, burst=burst,
                              queue_limit=queue_limit)
                   for i, (rate, burst, queue_limit) in enumerate(specs)]
        core = ServiceCore(tenants, config=small_config(stall_policy),
                           seed=3)
        rng = random.Random(schedule_seed)
        for _ in range(300):
            for spec in tenants:
                if rng.random() < load:
                    core.submit(spec.name, rng.getrandbits(16))
            core.tick()
        report = core.finish()

        for name, tenant in report.tenants.items():
            counts = tenant.counts
            assert counts["submitted"] == (
                counts["admitted"] + counts["throttled"]
                + counts["backpressured"] + counts["shed"]), name
            # Quiesced: everything admitted either completed or dropped.
            assert counts["admitted"] == (
                counts["completed"] + counts["dropped"]), name
            state = core.tenant(name)
            assert not state.queue and state.in_flight == 0, name
        if stall_policy == "stall":
            assert all(t.counts["dropped"] == 0
                       for t in report.tenants.values())


#: Exact rational rates in (0, 1], as Fractions and "p/q" strings — the
#: two lossless spellings parse_rate accepts.  Drawing the Fraction
#: directly (instead of a float that gets re-snapped) makes the window
#: bound below *exact*: no limit_denominator round trip anywhere.
exact_rates = st.builds(
    Fraction,
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=60),
).filter(lambda r: r <= 1).flatmap(
    lambda r: st.sampled_from([r, f"{r.numerator}/{r.denominator}"]))


class TestTokenBucketWindowBound:
    @given(rate=exact_rates,
           burst=st.integers(min_value=1, max_value=8),
           attempts=st.lists(st.booleans(), min_size=20, max_size=200),
           window=st.integers(min_value=1, max_value=50))
    @settings(**COMMON)
    def test_grants_in_any_window_bounded_by_exact_contract(
            self, rate, burst, attempts, window):
        """The classic bound, with zero float slack: the drawn rate IS
        the bucket's rate (strings parse exactly), so the bound
        ``burst + ceil(rate * W)`` is exact rational arithmetic."""
        bucket = TokenBucket(rate=rate, burst=burst)
        assert bucket.rate == Fraction(str(rate).strip())
        grant_cycles = [cycle for cycle, attempt in enumerate(attempts)
                        if attempt and bucket.try_grant(cycle)]
        bound = burst + math.ceil(bucket.rate * window)
        for start in range(len(attempts) - window + 1):
            in_window = sum(1 for cycle in grant_cycles
                            if start <= cycle < start + window)
            assert in_window <= bound, (
                f"window [{start}, {start + window}): {in_window} grants "
                f"> bound {bound} for rate={rate} burst={burst}")

    @given(rate=st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
           burst=st.integers(min_value=1, max_value=4))
    @settings(**COMMON)
    def test_saturated_throughput_stays_between_its_two_bounds(
            self, rate, burst):
        """Hammering every cycle is bounded by the contract above and by
        the bucket's granularity below.

        Upper: the window bound at W = the whole run.  Lower: every
        ``ceil(1/rate)`` consecutive cycles accrue at least one whole
        token (capacity clipping can cost fractional tokens — a burst-1
        bucket at rate 0.75 sustains 0.5/cycle, not 0.75 — but never a
        whole one while a grant is pending)."""
        bucket = TokenBucket(rate=rate, burst=burst)
        cycles = 2000
        grants = sum(1 for cycle in range(cycles) if bucket.try_grant(cycle))
        exact_rate = Fraction(rate).limit_denominator(1_000_000)
        assert grants <= burst + math.ceil(exact_rate * cycles)
        assert grants >= cycles // math.ceil(1 / exact_rate) - 1


class TestNoStarvation:
    @given(spacing=st.integers(min_value=5, max_value=20),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(**COMMON)
    def test_under_rate_tenant_is_never_rejected(self, spacing, seed):
        """A tenant pacing below its contract completes everything,
        even next to a saturating unlimited tenant on the same
        controller."""
        rate = 1.0 / (spacing - 1)  # strictly under-rate submissions
        tenants = [
            TenantSpec("meek", rate=rate, burst=2, queue_limit=8),
            TenantSpec("hog", rate=None, queue_limit=64),
        ]
        core = ServiceCore(tenants, config=small_config("stall"), seed=5)
        rng = random.Random(seed)
        for cycle in range(600):
            if cycle % spacing == 0:
                result = core.submit("meek", rng.getrandbits(16))
                assert result.status == ADMITTED, f"cycle {cycle}"
            core.submit("hog", rng.getrandbits(16))
            core.tick()
        report = core.finish()
        meek = report.tenants["meek"].counts
        assert meek["throttled"] == 0
        assert meek["backpressured"] == 0
        assert meek["shed"] == 0
        assert meek["completed"] == meek["admitted"] == meek["submitted"]
        # The hog made real progress too — no livelock on either side.
        assert report.tenants["hog"].counts["completed"] > 0
