"""Tracing overhead on the multi-tenant service loop.

Two acceptance bounds from the tracing layer's design contract
(DESIGN.md §14), both recorded in ``results/obs_trace_overhead.txt``:

* **Tracing off** must be free: the service layer calls the
  :data:`~repro.obs.trace.NULL_TRACER` no-ops unconditionally and the
  core structures hold ``None`` hooks behind one predictable branch,
  so two identical tracing-off runs must time within 3% of each other
  — the off path is indistinguishable from machine noise.
* **Tracing on** at the default production sampling (1 in 64
  submissions) must cost < 10% over tracing-off on the same fleet.
  The tracer here feeds the null event sink so the bound measures the
  tracer's bookkeeping (sampling, span assembly), not JSONL file I/O.

Timing interleaves the arms round-robin and takes each arm's best of
``ROUNDS`` (same estimator rationale as ``test_obs_overhead.py``: the
per-arm minimum is robust under external interference, and
interleaving spreads slow drift across all arms).
"""

import gc
import time

from repro.core import VPNMConfig
from repro.obs.trace import RequestTracer
from repro.service import ServiceCore
from repro.service.synthetic import run_synthetic, synthetic_fleet

from _report import report

CYCLES = 20_000
TENANTS = 4
ROUNDS = 8
SAMPLE_EVERY = 64

OFF_PATH_BOUND = 0.03
SAMPLED_BOUND = 0.10


def _run(sample_every):
    specs, profiles = synthetic_fleet(tenants=TENANTS, adversaries=1,
                                      benign_offered=0.2)
    tracer = (None if sample_every is None
              else RequestTracer(sample_every=sample_every))
    core = ServiceCore(specs,
                       config=VPNMConfig(address_bits=16, banks=8,
                                         bank_latency=8, queue_depth=4,
                                         delay_rows=32, hash_latency=0),
                       seed=7, tracer=tracer)
    run_synthetic(core, profiles, cycles=CYCLES, seed=7)


def _time(fn):
    # The service loop is allocation-heavy pure Python; collect up
    # front so GC pauses seeded by the *previous* arm don't land in
    # this one's window.
    gc.collect()
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_obs_trace_overhead(fast_mode):
    _run(None)  # warm-up (allocator, module imports)
    off_a = on = off_b = None
    for _ in range(ROUNDS):
        a = _time(lambda: _run(None))
        mid = _time(lambda: _run(SAMPLE_EVERY))
        b = _time(lambda: _run(None))
        off_a = a if off_a is None else min(off_a, a)
        on = mid if on is None else min(on, mid)
        off_b = b if off_b is None else min(off_b, b)

    off = min(off_a, off_b)
    off_path = abs(off_a - off_b) / min(off_a, off_b)
    on_path = (on - off) / off

    lines = [
        "request-tracing overhead, multi-tenant service "
        f"(B=8 L=8 Q=4 K=32, {TENANTS} tenants x {CYCLES} cycles, "
        f"interleaved best of {ROUNDS})",
        "",
        f"{'arm':<28} {'seconds':>9} {'overhead':>9}",
        f"{'tracing off (run A)':<28} {off_a:>9.3f} {'-':>9}",
        f"{'tracing off (run B)':<28} {off_b:>9.3f} {off_path:>8.1%}",
        f"{'sampling 1/' + str(SAMPLE_EVERY):<28} {on:>9.3f} "
        f"{on_path:>8.1%}",
        "",
        f"off-path (A/B noise floor)   {off_path:.1%}  "
        f"(bound < {OFF_PATH_BOUND:.0%}: tracing-off is null-object "
        "no-ops and dead branches)",
        f"on-path  (1/{SAMPLE_EVERY} sampling)     {on_path:.1%}  "
        f"(bound < {SAMPLED_BOUND:.0%})",
    ]
    report("obs_trace_overhead", "\n".join(lines))

    assert off_path < OFF_PATH_BOUND, (
        f"tracing-off A/B spread {off_path:.1%} exceeds "
        f"{OFF_PATH_BOUND:.0%}")
    assert on_path < SAMPLED_BOUND, (
        f"1/{SAMPLE_EVERY} sampling overhead {on_path:.1%} exceeds "
        f"{SAMPLED_BOUND:.0%}")
