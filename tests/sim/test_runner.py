"""Tests for the workload runner."""

import pytest

from repro.core import VPNMConfig, VPNMController, read_request
from repro.sim.runner import measure_stall_rate, run_workload
from repro.workloads.generators import burst_traffic, uniform_reads


def small_controller(**overrides):
    params = dict(banks=4, bank_latency=4, queue_depth=4, delay_rows=8,
                  address_bits=16, hash_latency=0)
    params.update(overrides)
    return VPNMController(VPNMConfig(**params), seed=0)


class TestRunWorkload:
    def test_all_requests_replied(self):
        ctrl = small_controller()
        result = run_workload(ctrl, uniform_reads(address_bits=16, count=100))
        assert result.offered == 100
        assert result.accepted == 100
        assert len(result.replies) == 100

    def test_idle_cycles_pass_through(self):
        ctrl = small_controller()
        result = run_workload(ctrl, burst_traffic(burst_length=2,
                                                  gap_length=3, count=20,
                                                  address_bits=16))
        assert result.offered == 8  # 4 bursts of 2 in 20 slots
        assert len(result.replies) == 8

    def test_retry_policy_eventually_accepts(self):
        """With the stall policy, rejected requests retry until accepted,
        so nothing is lost — the stream just slips."""
        ctrl = small_controller(banks=1, queue_depth=1, delay_rows=2)
        result = run_workload(ctrl, uniform_reads(address_bits=16, count=30))
        assert result.accepted == 30
        assert result.retries > 0
        assert len(result.replies) == 30

    def test_drop_policy_loses_requests(self):
        ctrl = small_controller(banks=1, queue_depth=1, delay_rows=2,
                                stall_policy="drop")
        result = run_workload(ctrl, uniform_reads(address_bits=16, count=30))
        assert result.dropped > 0
        assert result.accepted + result.dropped == 30
        assert len(result.replies) == result.accepted

    def test_max_cycles_truncates(self):
        ctrl = small_controller()
        result = run_workload(ctrl, uniform_reads(address_bits=16),
                              max_cycles=50, drain=False)
        assert ctrl.now == 50
        assert result.offered <= 51

    def test_acceptance_rate(self):
        ctrl = small_controller()
        result = run_workload(ctrl, uniform_reads(address_bits=16, count=10))
        assert result.acceptance_rate == 1.0


class TestMeasureStallRate:
    def test_no_stalls_on_friendly_traffic(self):
        # Paper-sized config: 32 banks absorb full-rate uniform traffic.
        ctrl = VPNMController(VPNMConfig(), seed=0)
        measurement = measure_stall_rate(
            ctrl, uniform_reads(address_bits=32), cycles=2000
        )
        assert measurement.stalls == 0
        assert measurement.empirical_mts is None
        assert "no stalls" in str(measurement)

    def test_stalls_on_hostile_config(self):
        ctrl = small_controller(banks=1, queue_depth=1, delay_rows=1,
                                stall_policy="drop")
        measurement = measure_stall_rate(
            ctrl, uniform_reads(address_bits=16), cycles=2000
        )
        assert measurement.stalls > 0
        assert measurement.first_stall_cycle is not None
        assert measurement.empirical_mts == pytest.approx(
            measurement.cycles / measurement.stalls
        )
