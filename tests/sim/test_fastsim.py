"""Cross-validation: the fast stall simulator against the full controller.

The fast simulator must reproduce the controller's stall behaviour
*exactly* (same counts, same cycles) when both see the same sequence of
bank assignments.  We arrange that by feeding the full controller
addresses pre-selected to land on a recorded random bank sequence.
"""

import random

import pytest

from repro.core import VPNMConfig, VPNMController, read_request
from repro.sim.fastsim import FastStallSimulator


def matched_run(config_params, cycles, seed):
    """Run controller and fastsim on an identical bank sequence."""
    config = VPNMConfig(address_bits=24, hash_latency=0,
                        stall_policy="drop", **config_params)

    # Record the bank sequence the fast sim will use.
    rng = random.Random(seed)
    bank_sequence = [rng.randrange(config.banks) for _ in range(cycles)]

    fast = FastStallSimulator(config, bank_source=iter(bank_sequence).__next__)
    fast_result = fast.run(cycles)

    # Drive the full controller with distinct addresses on the same banks.
    ctrl = VPNMController(config, seed=seed)
    pools = {b: [] for b in range(config.banks)}
    address = 0
    limit = 1 << 24
    cursor = {b: 0 for b in range(config.banks)}

    def next_address(bank):
        while cursor[bank] >= len(pools[bank]):
            nonlocal address
            if address >= limit:
                raise RuntimeError("address space exhausted")
            pools[ctrl.mapper.bank_of(address)].append(address)
            address += 1
        value = pools[bank][cursor[bank]]
        cursor[bank] += 1
        return value

    stall_cycles = []
    for cycle, bank in enumerate(bank_sequence):
        result = ctrl.step(read_request(next_address(bank)))
        if not result.accepted:
            stall_cycles.append(cycle)

    return fast_result, ctrl, stall_cycles


@pytest.mark.parametrize("params,seed", [
    (dict(banks=2, bank_latency=3, queue_depth=2, delay_rows=4), 1),
    (dict(banks=4, bank_latency=4, queue_depth=2, delay_rows=4), 2),
    (dict(banks=4, bank_latency=6, queue_depth=3, delay_rows=6,
          bus_scaling=1.3), 3),
    (dict(banks=8, bank_latency=5, queue_depth=2, delay_rows=8,
          bus_scaling=1.5), 4),
    (dict(banks=4, bank_latency=4, queue_depth=2, delay_rows=4,
          skip_idle_slots=False), 5),
])
def test_fastsim_matches_controller_exactly(params, seed):
    cycles = 4000
    fast_result, ctrl, ctrl_stall_cycles = matched_run(params, cycles, seed)
    assert fast_result.stalls == ctrl.stats.stalls
    assert fast_result.stall_cycles == ctrl_stall_cycles
    assert fast_result.accepted == ctrl.stats.reads_accepted
    # Reason split must agree too.
    assert fast_result.delay_storage_stalls == ctrl.stats.stall_reasons.get(
        "delay_storage", 0
    )
    assert fast_result.bank_queue_stalls == ctrl.stats.stall_reasons.get(
        "bank_queue", 0
    )


class TestFastSimBasics:
    def test_no_stalls_with_roomy_config(self):
        config = VPNMConfig(banks=32, queue_depth=8, delay_rows=32,
                            hash_latency=0)
        result = FastStallSimulator(config, seed=0).run(50_000)
        assert result.stalls == 0
        assert result.accepted == 50_000
        assert result.empirical_mts is None

    def test_stall_probability_and_mts(self):
        config = VPNMConfig(banks=2, bank_latency=8, queue_depth=1,
                            delay_rows=2, hash_latency=0)
        result = FastStallSimulator(config, seed=1).run(20_000)
        assert result.stalls > 0
        assert result.stall_probability == pytest.approx(
            result.stalls / 20_000
        )
        assert result.empirical_mts == pytest.approx(
            20_000 / result.stalls
        )

    def test_idle_probability_lowers_pressure(self):
        config = VPNMConfig(banks=2, bank_latency=8, queue_depth=1,
                            delay_rows=2, hash_latency=0)
        busy = FastStallSimulator(config, seed=2).run(20_000)
        idle = FastStallSimulator(config, seed=2).run(
            20_000, idle_probability=0.5
        )
        assert idle.stalls < busy.stalls

    def test_runs_are_resumable(self):
        config = VPNMConfig(banks=2, bank_latency=8, queue_depth=1,
                            delay_rows=2, hash_latency=0)
        sim = FastStallSimulator(config, seed=3)
        first = sim.run(5_000)
        second = sim.run(5_000)
        combined = FastStallSimulator(config, seed=3).run(10_000)
        assert first.stalls + second.stalls == combined.stalls
