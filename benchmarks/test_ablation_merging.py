"""ABL2 — is the merging queue load-bearing?

Ablation of the Section 3.4 redundant-request machinery: the
"A,B,A,B,..." flood against VPNM with merging enabled (the paper's
design) and disabled (every redundant read pays its own delay-storage
row and bank access).  Without merging, a two-address flood saturates
two banks and the delay storage; with it, the flood costs two bank
accesses per reply generation and nothing stalls.

The ``--fast`` variant reruns the contrast through the redundancy-aware
lane model (:class:`~repro.sim.mergesim.MergingLaneSimulator`) across
several seed-varied hash mappings — same accounting (pinned by
``tests/sim/test_mergesim_differential.py``), an order of magnitude
faster, so it can afford a longer flood and multiple lanes.
"""

import time

from repro.core import VPNMConfig, VPNMController
from repro.core.controller import read_request
from repro.sim.mergesim import MergingLaneSimulator
from repro.sim.runner import run_workload
from repro.workloads.adversarial import RedundancyFloodAdversary

from _report import report

REQUESTS = 2000

# --fast variant: longer flood, several independent hash mappings.
FAST_REQUESTS = 20_000
FAST_LANES = 4


def run_one(merge_reads: bool):
    ctrl = VPNMController(
        VPNMConfig(banks=32, queue_depth=8, delay_rows=32, hash_latency=0,
                   stall_policy="drop", merge_reads=merge_reads),
        seed=5,
    )
    flood = RedundancyFloodAdversary(hot_addresses=[0xA, 0xB])
    result = run_workload(ctrl, flood.requests(REQUESTS))
    return {
        "acceptance": result.accepted / REQUESTS,
        "stalls": ctrl.stats.stalls,
        "accesses": ctrl.device.total_accesses(),
        "merged": ctrl.stats.reads_merged,
        "replies": len(result.replies),
    }


def run_all():
    return {True: run_one(True), False: run_one(False)}


def test_ablation_merging(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with_merge, without = rows[True], rows[False]

    # With merging: perfect acceptance, almost no DRAM traffic.
    assert with_merge["acceptance"] == 1.0
    assert with_merge["stalls"] == 0
    assert with_merge["accesses"] <= REQUESTS / 20
    assert with_merge["merged"] >= REQUESTS - 10

    # Without: the flood overwhelms the two victim banks.
    assert without["acceptance"] < 0.5
    assert without["stalls"] > REQUESTS / 4
    assert without["accesses"] > with_merge["accesses"] * 10

    lines = [f"{'':<14} {'accept':>8} {'stalls':>7} {'DRAM ops':>9} "
             f"{'merged':>7} {'replies':>8}"]
    for label, row in [("merging ON", with_merge),
                       ("merging OFF", without)]:
        lines.append(f"{label:<14} {row['acceptance']:>8.1%} "
                     f"{row['stalls']:>7} {row['accesses']:>9} "
                     f"{row['merged']:>7} {row['replies']:>8}")
    report("ablation_merging", "\n".join(lines))


def _fast_config(merge_reads: bool) -> VPNMConfig:
    return VPNMConfig(banks=32, queue_depth=8, delay_rows=32,
                      hash_latency=0, stall_policy="drop",
                      merge_reads=merge_reads)


def run_fast_lane(merge_reads: bool, seed: int, addresses):
    sim = MergingLaneSimulator(_fast_config(merge_reads), seed=seed)
    sim.run(addresses)
    result = sim.drain()
    return {
        "acceptance": result.reads_accepted / len(addresses),
        "stalls": result.stalls,
        "accesses": result.accesses_issued,
        "merged": result.reads_merged,
    }


def run_fast_all(addresses):
    out = {}
    for merge in (True, False):
        lanes = [run_fast_lane(merge, seed, addresses)
                 for seed in range(FAST_LANES)]
        out[merge] = {
            key: sum(lane[key] for lane in lanes) / len(lanes)
            for key in lanes[0]
        }
    return out


def test_ablation_merging_fast(benchmark, fast_mode):
    """Lane-model rerun of the merging contrast, plus a speedup check."""
    addresses = [r.address for r in RedundancyFloodAdversary(
        hot_addresses=[0xA, 0xB]).requests(FAST_REQUESTS)]

    rows = benchmark.pedantic(run_fast_all, args=(addresses,),
                              rounds=1, iterations=1)
    with_merge, without = rows[True], rows[False]

    # Same qualitative contrast as the scalar bench, lane-averaged.
    assert with_merge["acceptance"] == 1.0
    assert with_merge["stalls"] == 0
    assert with_merge["accesses"] <= FAST_REQUESTS / 20
    assert with_merge["merged"] >= FAST_REQUESTS - 10
    assert without["acceptance"] < 0.5
    assert without["stalls"] > FAST_REQUESTS / 4

    # The point of the lane model: it must be much faster than the
    # object-per-request controller on the same stream.
    start = time.perf_counter()
    MergingLaneSimulator(_fast_config(True), seed=0).run(addresses)
    lane_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    run_workload(VPNMController(_fast_config(True), seed=0),
                 (read_request(a) for a in addresses), drain=False)
    scalar_elapsed = time.perf_counter() - start
    speedup = scalar_elapsed / lane_elapsed
    assert speedup >= 3.0, (
        f"lane model only {speedup:.1f}x faster than the controller")

    lines = [f"{FAST_LANES} lanes x {FAST_REQUESTS} flood requests "
             f"(lane model {speedup:.1f}x faster than the controller)",
             f"{'':<14} {'accept':>8} {'stalls':>9} {'DRAM ops':>9} "
             f"{'merged':>9}"]
    for label, row in [("merging ON", with_merge),
                       ("merging OFF", without)]:
        lines.append(f"{label:<14} {row['acceptance']:>8.1%} "
                     f"{row['stalls']:>9.0f} {row['accesses']:>9.0f} "
                     f"{row['merged']:>9.0f}")
    report("ablation_merging_batch", "\n".join(lines))
