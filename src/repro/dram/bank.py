"""A single DRAM bank: busy-window timing plus a backing store.

The bank is the unit of contention in the whole system: it can service
only one access at a time and stays busy for ``L`` memory-bus cycles per
access.  The VPNM bank controller (:mod:`repro.core.bank_controller`)
is responsible for never issuing to a busy bank; issuing anyway raises
:class:`BankBusyError` so scheduling bugs surface loudly instead of
silently corrupting timing results.

Data is stored per line index in a dict (sparse — the 4 GB packet buffer
of the paper would not fit in host memory as a dense array).  Reads of
never-written lines return ``None``, which the controller passes through;
applications that care initialize their lines first.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class BankBusyError(RuntimeError):
    """An access was issued to a bank that is still busy (scheduler bug)."""


class DRAMBank:
    """One DRAM bank with ``access_cycles`` busy time per access.

    Time is supplied by the caller (memory-bus cycle numbers); the bank
    itself keeps no clock.  ``issue_read``/``issue_write`` start an access
    at time ``now`` and the bank is busy until ``now + access_cycles``;
    the read data is considered available at that completion time.
    """

    def __init__(self, index: int, access_cycles: int,
                 refresh_interval: int = None, refresh_cycles: int = 0,
                 refresh_offset: int = 0):
        if access_cycles < 1:
            raise ValueError("access_cycles must be >= 1")
        self.index = index
        self.access_cycles = access_cycles
        self.refresh_interval = refresh_interval
        self.refresh_cycles = refresh_cycles
        self.refresh_offset = refresh_offset
        self._store: Dict[int, Any] = {}
        self._busy_until = 0  # first cycle at which the bank is free again
        self.reads_issued = 0
        self.writes_issued = 0

    def in_refresh(self, now: int) -> bool:
        """Whether ``now`` falls inside one of this bank's refresh windows.

        Refresh blocks *starting* a new access; an access already in
        flight completes normally (controllers schedule refresh around
        accesses, not through them).
        """
        if self.refresh_interval is None:
            return False
        phase = (now - self.refresh_offset) % self.refresh_interval
        return phase < self.refresh_cycles

    def is_busy(self, now: int) -> bool:
        """Whether the bank can NOT start an access at bus cycle ``now``."""
        return now < self._busy_until or self.in_refresh(now)

    @property
    def busy_until(self) -> int:
        """First memory-bus cycle at which the bank will be free."""
        return self._busy_until

    def _begin_access(self, now: int) -> int:
        if self.is_busy(now):
            raise BankBusyError(
                f"bank {self.index} busy until cycle {self._busy_until}, "
                f"access issued at {now}"
            )
        self._busy_until = now + self.access_cycles
        return self._busy_until

    def issue_read(self, line: int, now: int) -> "ReadAccess":
        """Start a read of ``line`` at cycle ``now``.

        Returns a :class:`ReadAccess` whose ``ready_at`` is the cycle the
        data is on the bus and whose ``data`` is the stored value.
        """
        ready_at = self._begin_access(now)
        self.reads_issued += 1
        return ReadAccess(line=line, ready_at=ready_at,
                          data=self._store.get(line))

    def issue_write(self, line: int, data: Any, now: int) -> int:
        """Start a write at cycle ``now``; returns the completion cycle."""
        done_at = self._begin_access(now)
        self.writes_issued += 1
        self._store[line] = data
        return done_at

    def peek(self, line: int) -> Optional[Any]:
        """Read the stored value without any timing effect (for tests)."""
        return self._store.get(line)

    def occupancy(self) -> int:
        """Number of distinct lines ever written."""
        return len(self._store)


class ReadAccess:
    """Result handle of an in-flight bank read."""

    __slots__ = ("line", "ready_at", "data")

    def __init__(self, line: int, ready_at: int, data: Any):
        self.line = line
        self.ready_at = ready_at
        self.data = data

    def __repr__(self) -> str:
        return f"ReadAccess(line={self.line}, ready_at={self.ready_at})"
