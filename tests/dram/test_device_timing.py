"""Tests for DRAM timing presets and the shared-bus device model."""

import pytest

from repro.dram.bank import BankBusyError
from repro.dram.device import BusConflictError, DRAMDevice
from repro.dram.timing import (
    DDR266,
    PC133_SDRAM,
    RDRAM_RIMM_512,
    RDRAM_SINGLE_DEVICE,
    DRAMTiming,
)


class TestTimingPresets:
    def test_paper_cited_parameters(self):
        # Section 3.1: one RDRAM device has 32 banks; a RIMM has 16x32=512.
        assert RDRAM_SINGLE_DEVICE.banks == 32
        assert RDRAM_RIMM_512.banks == 512
        # Section 3.1: "we select the value of L=20".
        assert RDRAM_SINGLE_DEVICE.access_cycles == 20
        assert RDRAM_RIMM_512.access_cycles == 20
        # Measured efficiencies the paper quotes for SDRAM parts.
        assert PC133_SDRAM.reported_efficiency == 0.60
        assert DDR266.reported_efficiency == 0.37

    def test_cycle_and_access_ns(self):
        assert RDRAM_SINGLE_DEVICE.cycle_ns == pytest.approx(2.5)
        assert RDRAM_SINGLE_DEVICE.access_ns == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMTiming("bad", banks=0, access_cycles=1, clock_mhz=100)
        with pytest.raises(ValueError):
            DRAMTiming("bad", banks=1, access_cycles=0, clock_mhz=100)
        with pytest.raises(ValueError):
            DRAMTiming("bad", banks=1, access_cycles=1, clock_mhz=0)
        with pytest.raises(ValueError):
            DRAMTiming("bad", banks=1, access_cycles=1, clock_mhz=1,
                       reported_efficiency=1.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PC133_SDRAM.banks = 8


class TestDRAMDevice:
    def make_device(self, banks=4, cycles=5, mhz=100.0):
        return DRAMDevice(DRAMTiming("test", banks, cycles, mhz))

    def test_bank_count_matches_timing(self):
        assert len(self.make_device(banks=8).banks) == 8

    def test_interleaved_reads_different_banks(self):
        device = self.make_device(banks=4, cycles=5)
        r0 = device.read(bank=0, line=1, now=0)
        r1 = device.read(bank=1, line=1, now=1)
        r2 = device.read(bank=2, line=1, now=2)
        assert (r0.ready_at, r1.ready_at, r2.ready_at) == (5, 6, 7)

    def test_same_cycle_issue_is_bus_conflict(self):
        device = self.make_device()
        device.read(bank=0, line=1, now=5)
        with pytest.raises(BusConflictError):
            device.read(bank=1, line=1, now=5)

    def test_time_running_backwards_rejected(self):
        device = self.make_device()
        device.read(bank=0, line=1, now=5)
        with pytest.raises(BusConflictError):
            device.read(bank=1, line=1, now=3)

    def test_bank_conflict_propagates(self):
        device = self.make_device(banks=2, cycles=10)
        device.read(bank=0, line=1, now=0)
        with pytest.raises(BankBusyError):
            device.read(bank=0, line=2, now=4)

    def test_write_read_round_trip_across_banks(self):
        device = self.make_device(banks=2, cycles=3)
        device.write(bank=1, line=77, data="hello", now=0)
        assert device.read(bank=1, line=77, now=3).data == "hello"

    def test_bank_free_at(self):
        device = self.make_device(banks=2, cycles=6)
        device.read(bank=0, line=0, now=10)
        assert device.bank_free_at(0) == 16
        assert device.bank_free_at(1) == 0

    def test_total_accesses(self):
        device = self.make_device(banks=2, cycles=1)
        device.read(bank=0, line=0, now=0)
        device.write(bank=1, line=0, data=0, now=1)
        assert device.total_accesses() == 2

    def test_peak_bandwidth(self):
        # 400 MHz, 64-byte transfers: 400e6 * 64 * 8 / 1e9 = 204.8 gbps
        device = DRAMDevice(RDRAM_SINGLE_DEVICE)
        assert device.peak_bandwidth_gbps(64) == pytest.approx(204.8)

    def test_repr_mentions_geometry(self):
        assert "banks" in repr(self.make_device())
