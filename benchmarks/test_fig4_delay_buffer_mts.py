"""FIG4 — MTS vs delay-storage-buffer rows K (paper Figure 4).

Regenerates the five curves (B, Q) = (4,12), (8,12), (16,12), (32,8),
(64,8) at R=1.3, L=20, D=L*Q, for K = 8..128, in log10(MTS cycles) —
the paper's y-axis.  Shape checks: the curves rise super-exponentially
with K, B=32/B=64 nearly coincide far above the B<32 curves, and the
headline point (B=32, K=32) reaches the ~10^12 decade.
"""

import math

from repro.analysis.delay_buffer_stall import log10_delay_buffer_mts

from _report import report

CURVES = [(4, 12), (8, 12), (16, 12), (32, 8), (64, 8)]
K_VALUES = list(range(8, 129, 8))
L = 20
CAP = 16.0  # the paper plots up to 10^16


def compute():
    table = {}
    for banks, queue_depth in CURVES:
        delay = L * queue_depth
        table[(banks, queue_depth)] = [
            min(CAP, log10_delay_buffer_mts(rows, delay, banks))
            for rows in K_VALUES
        ]
    return table


def render(table):
    header = "log10(MTS) vs K   (R=1.3, L=20, D=L*Q; cap 10^16)"
    lines = [header, "K:      " + " ".join(f"{k:>5}" for k in K_VALUES)]
    for (banks, queue_depth), values in table.items():
        label = f"B={banks:<3}Q={queue_depth:<3}"
        lines.append(label + " " + " ".join(
            f"{v:5.1f}" if math.isfinite(v) else "  inf" for v in values))
    return "\n".join(lines)


def test_fig4_delay_buffer_mts(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    b32 = table[(32, 8)]
    b64 = table[(64, 8)]
    b16 = table[(16, 12)]
    b4 = table[(4, 12)]

    # The headline point: B=32, K=32 lands in the 10^12-10^14 band.
    k32_index = K_VALUES.index(32)
    assert 11.5 < b32[k32_index] < 14.5

    # Curves rise monotonically and sharply with K.
    for values in table.values():
        assert all(b >= a for a, b in zip(values, values[1:]))
    assert b32[k32_index] - b32[K_VALUES.index(16)] > 4  # "rises sharply"

    # B=64 sits above B=32; on the paper's plot the two 'follow very
    # closely' because both saturate the 10^16 display cap within a few
    # K steps of each other (the underlying gap is (K-1)*log10(2)).
    uncapped = [(x, y) for x, y in zip(b32, b64) if x < CAP and y < CAP]
    assert all(y >= x for x, y in uncapped)
    first_cap_b32 = next(k for k, v in zip(K_VALUES, b32) if v >= CAP)
    first_cap_b64 = next(k for k, v in zip(K_VALUES, b64) if v >= CAP)
    assert abs(first_cap_b32 - first_cap_b64) <= 16  # within 2 K-steps

    # Lower bank counts need much larger K for the same confidence:
    # at K=32, B=16 and B=4 are far below B=32.
    assert b16[k32_index] < b32[k32_index] - 3
    assert b4[k32_index] < 8  # 'MTS value of 10^8' needs much higher K

    report("fig4_delay_buffer_mts", render(table))
