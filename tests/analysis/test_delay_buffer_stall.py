"""Tests for the Section 5.1 closed-form MTS."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.delay_buffer_stall import (
    delay_buffer_mts,
    log10_delay_buffer_mts,
    log_exact_tail_probability,
    log_stall_window_probability,
    minimum_rows_for_mts,
    stall_window_probability,
)


class TestWindowProbability:
    def test_hand_computed_small_case(self):
        # K=2, D=3, B=2: p = C(2,1) * (1/2)^1 = 1.0
        assert stall_window_probability(2, 3, 2) == pytest.approx(1.0)
        # K=3, D=3, B=2: p = C(2,2) * (1/4) = 0.25
        assert stall_window_probability(3, 3, 2) == pytest.approx(0.25)

    def test_impossible_window_is_zero(self):
        # K=5 requests cannot fit in a D=3 window.
        assert stall_window_probability(5, 3, 4) == 0.0
        assert log_stall_window_probability(5, 3, 4) == -math.inf

    def test_probability_clamped_to_one(self):
        # Degenerate: leading term exceeds 1 (K=2, D=100, B=2).
        assert stall_window_probability(2, 100, 2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            stall_window_probability(0, 10, 4)
        with pytest.raises(ValueError):
            stall_window_probability(4, 0, 4)
        with pytest.raises(ValueError):
            stall_window_probability(4, 10, 0)

    @given(rows=st.integers(2, 40), delay=st.integers(2, 300),
           banks=st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=60)
    def test_monotonic_in_parameters(self, rows, delay, banks):
        """Longer windows -> higher p; more banks -> lower p; and in the
        rare-stall regime (K above the window's expected count, where
        the leading term is a real probability), more rows -> lower p."""
        from hypothesis import assume
        p = log_stall_window_probability(rows, delay, banks)
        assert log_stall_window_probability(rows, delay + 1, banks) >= p
        assert log_stall_window_probability(rows, delay, banks * 2) <= p
        # Row-monotonicity holds above the binomial mode; below it the
        # unnormalized leading term is not a probability and can grow.
        assume(rows - 1 > (delay - 1) / banks)
        assert log_stall_window_probability(rows + 1, delay, banks) <= p

    def test_exact_tail_at_least_leading_term_with_survival(self):
        """The exact tail includes every j >= K-1 term, so it exceeds the
        single j = K-1 term with its survival factor."""
        rows, delay, banks = 8, 64, 8
        trials, threshold = delay - 1, rows - 1
        leading_with_survival = (
            math.lgamma(trials + 1) - math.lgamma(threshold + 1)
            - math.lgamma(trials - threshold + 1)
            + threshold * math.log(1 / banks)
            + (trials - threshold) * math.log(1 - 1 / banks)
        )
        assert log_exact_tail_probability(rows, delay, banks) >= (
            leading_with_survival
        )

    def test_exact_tail_is_a_probability(self):
        for rows, delay, banks in [(4, 32, 4), (8, 100, 16), (16, 160, 32)]:
            assert log_exact_tail_probability(rows, delay, banks) <= 0.0

    def test_exact_tail_single_bank_is_certain(self):
        assert log_exact_tail_probability(3, 10, 1) == 0.0


class TestMTS:
    def test_figure4_headline_point(self):
        """Paper Figure 4: B=32, K=32 (Q=8 -> D=160) reaches ~10^12;
        our evaluation of their formula lands within 2 decades."""
        value = log10_delay_buffer_mts(32, 160, 32)
        assert 11.5 < value < 14.5

    def test_figure4_b32_vs_b64_nearly_coincide(self):
        """'The curve for B = 64 follows very closely the curve for
        B = 32' — within a couple of decades at matched K."""
        for rows in (32, 64, 96):
            b32 = log10_delay_buffer_mts(rows, 160, 32)
            b64 = log10_delay_buffer_mts(rows, 160, 64)
            assert b64 > b32  # more banks strictly better
        # ... but low-bank systems are hopeless (B=4 far below B=32).
        assert log10_delay_buffer_mts(32, 240, 4) < 8 < (
            log10_delay_buffer_mts(32, 160, 32)
        )

    def test_mts_certain_stall_is_one_window(self):
        assert delay_buffer_mts(2, 100, 2) == 100.0

    def test_mts_impossible_stall_is_infinite(self):
        assert delay_buffer_mts(50, 10, 4) == math.inf

    def test_mts_huge_values_do_not_overflow(self):
        huge = delay_buffer_mts(128, 160, 64)
        assert huge > 1e100 or huge == math.inf  # no overflow error
        assert log10_delay_buffer_mts(128, 160, 64) > 100  # finite log
        # A value that genuinely exceeds float range returns inf.
        assert delay_buffer_mts(1024, 1100, 512) == math.inf

    def test_moderate_regime_consistency(self):
        """Where p is moderate, MTS and its log10 version must agree."""
        value = delay_buffer_mts(6, 40, 4)
        assert math.isfinite(value)
        assert math.log10(value) == pytest.approx(
            log10_delay_buffer_mts(6, 40, 4), rel=1e-6
        )

    def test_paper_formula_is_conservative(self):
        """The paper's leading term omits the ``(1-1/B)^(D-K)`` survival
        factor, so it *over*-estimates the stall probability: the exact
        binomial tail yields a larger (more optimistic) MTS.  The paper
        itself notes its estimate 'counts some stalls multiple times'."""
        leading = delay_buffer_mts(16, 160, 32, tail="leading")
        exact = delay_buffer_mts(16, 160, 32, tail="exact")
        assert exact >= leading

    def test_bad_tail_kind(self):
        with pytest.raises(ValueError):
            delay_buffer_mts(4, 10, 4, tail="fat")

    @given(rows=st.integers(3, 30), banks=st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=40)
    def test_mts_monotonic_in_rows(self, rows, banks):
        delay = 80
        assert (log10_delay_buffer_mts(rows + 1, delay, banks)
                >= log10_delay_buffer_mts(rows, delay, banks))


class TestDesignHelper:
    def test_minimum_rows_achieves_target(self):
        rows = minimum_rows_for_mts(1e12, delay=160, banks=32)
        assert log10_delay_buffer_mts(rows, 160, 32) >= 12
        assert log10_delay_buffer_mts(rows - 1, 160, 32) < 12

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            minimum_rows_for_mts(1e12, delay=160, banks=32, max_rows=4)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            minimum_rows_for_mts(0, delay=10, banks=4)
