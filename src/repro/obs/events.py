"""Structured JSONL event stream for runs, shards and campaigns.

One event per line, each a JSON object with a fixed envelope::

    {"v": 1, "seq": 7, "type": "shard_finished", ...payload...,
     "timing": {"elapsed_s": 1.93, "lane_cycles_per_s": 1.1e7}}

Schema contract (DESIGN.md §9):

* ``v`` — schema version (:data:`EVENT_SCHEMA_VERSION`); consumers
  reject lines whose version they do not know.
* ``seq`` — per-sink monotonically increasing sequence number,
  starting at 0.
* ``type`` — one of :data:`EVENT_TYPES`; each type's required payload
  fields are listed there and enforced by :func:`validate_event`.
* ``timing`` — the **only** envelope member allowed to carry
  wall-clock-dependent values.  Everything outside ``timing`` is a pure
  function of (config, seeds, interruption points), which is what makes
  the determinism test possible: two runs of the same campaign cell
  produce byte-identical JSONL once ``timing`` is dropped.

Events are serialized with ``sort_keys=True`` and compact separators,
so equal payloads are equal bytes.
"""

from __future__ import annotations

import json
import numbers
from typing import Callable, Dict, Iterator, List, Optional, Sequence

EVENT_SCHEMA_VERSION = 1

#: type -> required payload fields (name -> type check).  ``timing`` is
#: always optional; extra payload fields are allowed (forward compat).
EVENT_TYPES: Dict[str, Dict[str, type]] = {
    # Campaign lifecycle.
    "campaign_started": {"cells_total": int, "cells_done": int},
    "cell_started": {"cell": str, "lanes": int, "cycles": int},
    "cell_resumed": {"cell": str, "lanes": int, "cycles": int},
    "cell_finished": {"cell": str, "result": dict},
    # Batch-runner progress.
    "shard_finished": {"shard": int, "shards": int, "restored": bool,
                       "lanes": int},
    "stalls_observed": {"shard": int, "delay_storage": int,
                        "bank_queue": int},
    # Distributed work-stealing (DESIGN.md §15).  These live in
    # per-worker logs under ``<campaign>/workers/`` — never in the
    # campaign's own ``events.jsonl``, which must stay byte-identical
    # to a serial run.  Wall-clock values ride ``timing`` as always.
    "campaign.worker_started": {"worker": str, "role": str, "host": str,
                                "pid": int, "cells": int},
    "campaign.worker_stopped": {"worker": str, "claimed": int,
                                "completed": int, "reclaimed": int},
    # One shard's lease lifecycle on the exchange: claimed (O_EXCL
    # create won), completed (checkpoint deposited, lease released),
    # reclaimed (stale lease stolen from ``stale_worker`` after its
    # heartbeat stopped for a TTL).
    "shard.claimed": {"worker": str, "cell": str, "shard": int},
    "shard.completed": {"worker": str, "cell": str, "shard": int,
                        "lanes": int, "cycles": int},
    "shard.reclaimed": {"worker": str, "cell": str, "shard": int,
                        "stale_worker": str},
    # Kernel resolution (DESIGN.md §13): emitted exactly once per
    # resolution site when a requested compiled kernel ("jit") has to
    # degrade — ``effective`` is what actually runs ("chunked") and
    # ``reason`` the human-readable probe failure chain.
    "kernel.fallback": {"requested": str, "effective": str, "reason": str},
    # Multi-tenant memory service (DESIGN.md §11).  Everything is a
    # pure function of (config, seeds, submission schedule): two
    # identical service runs emit byte-identical streams modulo
    # ``timing``.
    "service.started": {"tenants": int, "controllers": int, "window": int},
    "service.stopped": {"cycles": int, "completed": int},
    # ``rate`` is the admitted-requests-per-cycle contract; -1.0 means
    # unlimited (admission control off for the tenant).
    "tenant.registered": {"tenant": str, "priority": int, "rate": float,
                          "queue_limit": int},
    # Per-window accounting; ``latency`` holds the window's completion
    # percentiles (p50/p95/p99/max) and is empty when nothing completed.
    "tenant.window": {"tenant": str, "window": int, "start": int,
                      "admitted": int, "completed": int, "rejected": int,
                      "dropped": int, "latency": dict},
    # Backpressure edge: the tenant's bounded queue filled (engaged) or
    # drained back below its high-water mark (released).
    "tenant.backpressure": {"tenant": str, "cycle": int, "engaged": bool,
                            "depth": int},
    # Graceful degradation: tenant shed (lowest priority first) while
    # the delay storage nears capacity, and restored when it recovers.
    "tenant.shed": {"tenant": str, "cycle": int, "pressure": float},
    "tenant.restored": {"tenant": str, "cycle": int},
    # SLO contracts (DESIGN.md §12).  Breach/recovery are edges of the
    # rolling-window p99 crossing the tenant's `slo_p99` target;
    # slo_rate records every admitted-rate move the adaptive controller
    # (direction "down"/"up") or an operator (`set-rate`, direction
    # "set") makes.  `rate` is the new rate as a float, -1.0 meaning
    # unlimited; the exact rational lives in the service `info` op.
    "tenant.slo_breach": {"tenant": str, "cycle": int, "p99": float,
                          "target": int},
    "tenant.slo_recovered": {"tenant": str, "cycle": int, "p99": float},
    "tenant.slo_rate": {"tenant": str, "cycle": int, "rate": float,
                        "direction": str},
    # End-of-run ledger: counts must satisfy request conservation
    # (admitted == completed + dropped once the service has quiesced).
    "tenant.summary": {"tenant": str, "counts": dict, "latency": dict},
    # Request-scoped tracing (DESIGN.md §14).  ``trace.span`` is one
    # stage residency of one sampled request — half-open interface-cycle
    # interval [start, end) — and ``trace.request`` is that request's
    # closing record: ``cycle`` is the submit cycle, ``spans`` maps
    # stage name -> cycles and tiles [submit, submit+latency] exactly,
    # so ``residual`` (latency minus the span sum) is 0 by construction
    # for completed requests.  Sampling is by submission sequence
    # number — carried as ``req`` (``seq`` is the envelope's per-sink
    # counter) — so two identical runs trace identical requests and the
    # streams are byte-identical modulo ``timing``.
    "trace.span": {"tenant": str, "req": int, "stage": str,
                   "start": int, "end": int},
    "trace.request": {"tenant": str, "req": int, "cycle": int, "op": str,
                      "status": str, "latency": int, "stalls": int,
                      "merged": bool, "spans": dict, "residual": int},
}


def validate_event(event: object) -> dict:
    """Check one decoded event against the schema; returns it.

    Raises ``ValueError`` with a specific message on any violation —
    the CI telemetry smoke step validates every emitted line through
    this function.
    """
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    version = event.get("v")
    if version != EVENT_SCHEMA_VERSION:
        raise ValueError(f"unknown event schema version {version!r}")
    seq = event.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ValueError(f"seq must be a non-negative int, got {seq!r}")
    event_type = event.get("type")
    if event_type not in EVENT_TYPES:
        raise ValueError(f"unknown event type {event_type!r}")
    for name, kind in EVENT_TYPES[event_type].items():
        value = event.get(name)
        if name not in event:
            raise ValueError(f"{event_type} event missing field {name!r}")
        if kind is int and isinstance(value, bool):
            raise ValueError(f"{event_type}.{name} must be int, got bool")
        if not isinstance(value, kind):
            raise ValueError(
                f"{event_type}.{name} must be {kind.__name__}, "
                f"got {type(value).__name__}")
    timing = event.get("timing")
    if timing is not None:
        if not isinstance(timing, dict):
            raise ValueError("timing must be an object")
        for key, value in timing.items():
            if value is not None and not isinstance(value, numbers.Real):
                raise ValueError(
                    f"timing.{key} must be numeric or null, "
                    f"got {type(value).__name__}")
    return event


class EventSink:
    """Interface: receives typed events; subclasses decide what to do."""

    def emit(self, event_type: str, payload: Optional[dict] = None,
             timing: Optional[dict] = None) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullEventSink(EventSink):
    """Telemetry-off sink: drops everything."""

    def emit(self, event_type: str, payload: Optional[dict] = None,
             timing: Optional[dict] = None) -> None:
        pass


NULL_EVENTS = NullEventSink()


class JsonlEventSink(EventSink):
    """Appends one validated, canonically-serialized JSON object per event.

    ``path`` is opened in append mode so interrupted campaigns keep one
    continuous log across resumes; ``seq`` restarts at 0 per sink (per
    process attachment), so consumers order by file position, not seq.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "a")
        self._seq = 0

    def emit(self, event_type: str, payload: Optional[dict] = None,
             timing: Optional[dict] = None) -> None:
        event = {"v": EVENT_SCHEMA_VERSION, "seq": self._seq,
                 "type": event_type}
        if payload:
            for key in payload:
                if key in ("v", "seq", "type", "timing"):
                    raise ValueError(
                        f"payload field {key!r} collides with the envelope")
            event.update(payload)
        if timing is not None:
            event["timing"] = timing
        validate_event(event)
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        self._seq += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class TeeEventSink(EventSink):
    """Fans one event out to several sinks (e.g. JSONL + callback adapter)."""

    def __init__(self, sinks: Sequence[EventSink]):
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event_type: str, payload: Optional[dict] = None,
             timing: Optional[dict] = None) -> None:
        for sink in self.sinks:
            sink.emit(event_type, payload, timing)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class ShardProgressAdapter(EventSink):
    """Replays ``shard_finished`` events into the legacy per-shard callback.

    The pre-telemetry :data:`~repro.sim.batchrunner.ShardProgress`
    signature was ``(shard_index, total_shards, restored,
    elapsed_seconds)``; runners now speak events, and this adapter keeps
    every existing caller working unchanged.
    """

    def __init__(self, callback: Callable[[int, int, bool, float], None]):
        self.callback = callback

    def emit(self, event_type: str, payload: Optional[dict] = None,
             timing: Optional[dict] = None) -> None:
        if event_type != "shard_finished":
            return
        elapsed = (timing or {}).get("elapsed_s", 0.0)
        self.callback(payload["shard"], payload["shards"],
                      payload["restored"], elapsed)


class CampaignProgressAdapter(EventSink):
    """Replays shard events into the legacy campaign progress callback.

    Signature: ``(cell_id, shard_index, total_shards, restored,
    elapsed_seconds)`` — the shard events a campaign forwards carry the
    owning cell id in their payload.
    """

    def __init__(self,
                 callback: Callable[[str, int, int, bool, float], None]):
        self.callback = callback

    def emit(self, event_type: str, payload: Optional[dict] = None,
             timing: Optional[dict] = None) -> None:
        if event_type != "shard_finished" or "cell" not in (payload or {}):
            return
        elapsed = (timing or {}).get("elapsed_s", 0.0)
        self.callback(payload["cell"], payload["shard"], payload["shards"],
                      payload["restored"], elapsed)


def iter_events(path: str, validate: bool = True) -> Iterator[dict]:
    """Yield decoded events from a JSONL log, optionally validating each."""
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: bad JSON: {error}")
            if validate:
                try:
                    validate_event(event)
                except ValueError as error:
                    raise ValueError(f"{path}:{lineno}: {error}")
            yield event


def read_events(path: str, validate: bool = True) -> List[dict]:
    """All events of a JSONL log as a list."""
    return list(iter_events(path, validate=validate))
