"""Unit tests for the batch engine and the sharded batch runner.

Exactness against the scalar simulator lives in
``test_batchsim_differential.py``; this file covers everything else:
the determinism contract (lane results as a pure function of
``(config, seed, cycles, idle)``), input validation, result-object
arithmetic, and the :class:`BatchRunner` guarantees — shard-size and
worker-count invariance, checkpoint resume without recompute, and the
confidence intervals it reports.
"""

import json
import os

import numpy as np
import pytest

from repro.core import VPNMConfig
from repro.core.exceptions import ConfigurationError
from repro.sim.batchrunner import BatchRunner, lane_seeds
from repro.sim.batchsim import BatchRunResult, BatchStallSimulator

# Tight enough to stall within a few thousand cycles, one config per
# engine strategy.
STRICT = VPNMConfig(banks=4, bank_latency=9, queue_depth=2, delay_rows=3,
                    bus_scaling=1.3, hash_latency=0, skip_idle_slots=False)
WORKC = VPNMConfig(banks=4, bank_latency=9, queue_depth=2, delay_rows=3,
                   bus_scaling=1.3, hash_latency=0, skip_idle_slots=True)
CYCLES = 4000


def _as_tuple(result):
    return (
        result.accepted.tolist(),
        result.delay_storage_stalls.tolist(),
        result.bank_queue_stalls.tolist(),
        [cycles.tolist() for cycles in result.stall_cycles],
    )


@pytest.mark.parametrize("config", [STRICT, WORKC],
                         ids=["strict", "work-conserving"])
class TestDeterminism:
    def test_same_seeds_same_results(self, config):
        first = BatchStallSimulator(config, [3, 4, 5]).run(CYCLES)
        second = BatchStallSimulator(config, [3, 4, 5]).run(CYCLES)
        assert _as_tuple(first) == _as_tuple(second)
        assert first.total_stalls > 0  # the config actually stalls

    def test_lane_independent_of_batch_composition(self, config):
        """A lane's results don't depend on which lanes ride along."""
        alone = BatchStallSimulator(config, [7]).run(CYCLES)
        grouped = BatchStallSimulator(config, [5, 7, 9]).run(CYCLES)
        assert int(grouped.accepted[1]) == int(alone.accepted[0])
        assert (int(grouped.delay_storage_stalls[1])
                == int(alone.delay_storage_stalls[0]))
        assert (int(grouped.bank_queue_stalls[1])
                == int(alone.bank_queue_stalls[0]))
        assert (grouped.stall_cycles[1].tolist()
                == alone.stall_cycles[0].tolist())

    def test_idle_probability_changes_stream(self, config):
        busy = BatchStallSimulator(config, [3]).run(CYCLES)
        idle = BatchStallSimulator(config, [3]).run(CYCLES,
                                                   idle_probability=0.5)
        assert int(idle.accepted[0]) < int(busy.accepted[0])


class TestValidation:
    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            BatchStallSimulator(STRICT, [])

    def test_rejects_wrong_sequence_shape(self):
        sim = BatchStallSimulator(STRICT, [1, 2])
        with pytest.raises(ConfigurationError):
            sim.run(100, bank_sequences=np.zeros((3, 100), dtype=np.int32))

    def test_rejects_out_of_range_bank(self):
        sim = BatchStallSimulator(STRICT, [1])
        seq = np.zeros((1, 100), dtype=np.int32)
        seq[0, 50] = STRICT.banks  # one past the last bank
        with pytest.raises(ConfigurationError):
            sim.run(100, bank_sequences=seq)


class TestBatchRunResult:
    def test_aggregates(self):
        result = BatchRunResult(
            cycles=1000, lanes=2,
            accepted=np.array([900, 950]),
            delay_storage_stalls=np.array([60, 10]),
            bank_queue_stalls=np.array([40, 40]),
            stall_cycles=[np.array([1, 2]), np.array([3])],
        )
        assert result.stalls.tolist() == [100, 50]
        assert result.total_cycles == 2000
        assert result.total_stalls == 150
        assert result.stall_probability == pytest.approx(0.075)
        assert result.empirical_mts == pytest.approx(2000 / 150)

    def test_lane_result_round_trip(self):
        batch = BatchStallSimulator(STRICT, [3, 4]).run(CYCLES)
        lane = batch.lane_result(1)
        assert lane.cycles == CYCLES
        assert lane.accepted == int(batch.accepted[1])
        assert lane.stalls == int(batch.stalls[1])
        assert lane.stall_cycles == batch.stall_cycles[1].tolist()

    def test_stall_free_run_reports_none_mts(self):
        roomy = VPNMConfig(banks=8, bank_latency=2, queue_depth=16,
                           delay_rows=64, bus_scaling=1.3, hash_latency=0,
                           skip_idle_slots=False)
        result = BatchStallSimulator(roomy, [1]).run(2000)
        assert result.total_stalls == 0
        assert result.empirical_mts is None
        assert result.stall_probability == 0.0


class TestLaneSeeds:
    def test_stable_and_distinct(self):
        seeds = lane_seeds(12345, 16)
        assert seeds == lane_seeds(12345, 16)
        assert len(set(seeds)) == 16
        assert seeds[:8] == lane_seeds(12345, 8)  # prefix-stable

    def test_root_seed_matters(self):
        assert lane_seeds(1, 4) != lane_seeds(2, 4)


class TestBatchRunner:
    def test_requires_seeds_or_lanes(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(STRICT)

    def test_rejects_zero_lanes(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(STRICT, lanes=0)
        with pytest.raises(ConfigurationError):
            BatchRunner(STRICT, seeds=[])

    def test_rejects_contradictory_lanes(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(STRICT, seeds=[1, 2, 3], lanes=4)

    def test_rejects_bad_shard_and_worker_counts(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(STRICT, lanes=4, shard_lanes=0)
        with pytest.raises(ConfigurationError):
            BatchRunner(STRICT, lanes=4, workers=0)

    def test_shard_size_invariance(self):
        """Aggregate statistics don't depend on how lanes are sharded."""
        seeds = lane_seeds(7, 6)
        reports = [
            BatchRunner(STRICT, seeds=seeds, shard_lanes=n).run(CYCLES)
            for n in (1, 2, 6)
        ]
        reference = reports[0]
        assert reference.total_stalls > 0
        for report in reports[1:]:
            assert report.accepted.tolist() == reference.accepted.tolist()
            assert (report.delay_storage_stalls.tolist()
                    == reference.delay_storage_stalls.tolist())
            assert (report.bank_queue_stalls.tolist()
                    == reference.bank_queue_stalls.tolist())

    def test_checkpoint_resume_skips_finished_shards(self, tmp_path,
                                                     monkeypatch):
        """A resumed campaign must not recompute checkpointed shards."""
        runner = BatchRunner(STRICT, lanes=4, seed=3, shard_lanes=2,
                             checkpoint_dir=str(tmp_path))
        first = runner.run(CYCLES)
        checkpoints = sorted(os.listdir(tmp_path))
        assert checkpoints == ["shard_00000.json", "shard_00001.json"]

        # Poison the simulation: if resume touches it, the test fails.
        def boom(args):
            raise AssertionError("shard was recomputed on resume")

        monkeypatch.setattr("repro.sim.batchrunner._run_shard", boom)
        resumed = BatchRunner(STRICT, lanes=4, seed=3, shard_lanes=2,
                              checkpoint_dir=str(tmp_path)).run(CYCLES)
        assert resumed.accepted.tolist() == first.accepted.tolist()
        assert resumed.total_stalls == first.total_stalls

    def test_stale_checkpoints_are_recomputed(self, tmp_path):
        """A checkpoint from different run parameters must be ignored."""
        BatchRunner(STRICT, lanes=2, seed=3, shard_lanes=2,
                    checkpoint_dir=str(tmp_path)).run(CYCLES)
        # Same seeds, different cycle count -> different fingerprint.
        fresh = BatchRunner(STRICT, lanes=2, seed=3, shard_lanes=2,
                            checkpoint_dir=str(tmp_path)).run(CYCLES // 2)
        direct = BatchRunner(STRICT, lanes=2, seed=3,
                             shard_lanes=2).run(CYCLES // 2)
        assert fresh.accepted.tolist() == direct.accepted.tolist()
        assert fresh.total_stalls == direct.total_stalls

    def test_corrupt_checkpoint_is_recomputed(self, tmp_path):
        runner = BatchRunner(STRICT, lanes=2, seed=3, shard_lanes=2,
                             checkpoint_dir=str(tmp_path))
        reference = runner.run(CYCLES)
        path = tmp_path / "shard_00000.json"
        path.write_text("{ truncated")
        recovered = BatchRunner(STRICT, lanes=2, seed=3, shard_lanes=2,
                                checkpoint_dir=str(tmp_path)).run(CYCLES)
        assert recovered.accepted.tolist() == reference.accepted.tolist()
        # And the checkpoint was rewritten intact.
        json.loads(path.read_text())

    def test_multiprocess_matches_inline(self):
        """Worker processes produce the same aggregate as inline runs."""
        seeds = lane_seeds(11, 4)
        inline = BatchRunner(STRICT, seeds=seeds, shard_lanes=2,
                             workers=1).run(CYCLES)
        pooled = BatchRunner(STRICT, seeds=seeds, shard_lanes=2,
                             workers=2).run(CYCLES)
        assert pooled.accepted.tolist() == inline.accepted.tolist()
        assert (pooled.delay_storage_stalls.tolist()
                == inline.delay_storage_stalls.tolist())
        assert (pooled.bank_queue_stalls.tolist()
                == inline.bank_queue_stalls.tolist())

    def test_report_intervals(self):
        report = BatchRunner(STRICT, lanes=4, seed=5,
                             shard_lanes=4).run(CYCLES)
        assert report.total_stalls > 0
        prob = report.stall_probability
        assert prob.low <= prob.estimate <= prob.high
        ival = report.mts_interval
        assert ival.low < report.empirical_mts < ival.high
        assert report.empirical_mts in ival
        summary = report.summary()
        assert "stalls" in summary and "MTS" in summary
