"""Tests for the sweep-campaign orchestrator (sim/campaign).

The contract under test: a grid of cells behind one manifest, where an
interrupted campaign — whether stopped between cells (``max_cells``) or
killed mid-cell (an exception out of the progress callback) — resumes
exactly where it stopped and aggregates bit-identically to an
uninterrupted run; the manifest records per-cell status, seeds,
fingerprints, and wall-clock/throughput observability data; and
fingerprint skew demotes a cell back to pending.
"""

import json
import os

import pytest

from repro.core.exceptions import ConfigurationError
from repro.obs.events import read_events
from repro.sim import kernels as kernels_pkg
from repro.sim.campaign import (
    EVENT_LOG_NAME,
    MANIFEST_NAME,
    CellSpec,
    SweepCampaign,
    fig4_grid,
    fig6_grid,
    load_grid,
)

_COMPILED, _NO_COMPILED_REASON = kernels_pkg.compiled_kernels()
needs_compiled = pytest.mark.skipif(
    _COMPILED is None,
    reason=f"no compiled kernel backend ({_NO_COMPILED_REASON})")

# Small, stall-heavy grid: two Q values on a tight configuration.
CELLS = fig6_grid([1, 2], banks=4, bank_latency=4, delay_rows=64,
                  cycles=4_000, lanes=4)


def _aggregates(campaign):
    return {
        cell_id: (report.accepted.tolist(), report.stalls.tolist())
        for cell_id, report in campaign.reports().items()
    }


def _manifest_stats(root):
    """Everything deterministic in a manifest (wall-clock fields out)."""
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    return {
        cell_id: tuple(manifest["cells"][cell_id][k]
                       for k in ("status", "seed", "fingerprint",
                                 "shards", "result", "telemetry"))
        for cell_id in manifest["order"]
    }


_ENVELOPE_KEYS = ("v", "seq", "type", "timing")


def _event_skeleton(root):
    """The deterministic channel of the event log: types + payloads.

    Payload fields are spread into the envelope; strip the envelope
    bookkeeping and the wall-clock ``timing`` member before comparing.
    """
    return [
        (ev["type"], json.dumps(
            {k: v for k, v in ev.items() if k not in _ENVELOPE_KEYS},
            sort_keys=True))
        for ev in read_events(str(root / EVENT_LOG_NAME))
    ]


class TestGridBuilders:
    def test_fig4_grid_sweeps_delay_rows(self):
        cells = fig4_grid([8, 16], banks=4, cycles=1000, lanes=2)
        assert [c.delay_rows for c in cells] == [8, 16]
        assert len({c.cell_id for c in cells}) == 2
        # Strict engine, no hash stage: stalls attributable per mechanism.
        assert all(not c.config().skip_idle_slots for c in cells)
        assert all(c.config().hash_latency == 0 for c in cells)

    def test_fig6_grid_sweeps_queue_depth(self):
        cells = fig6_grid([2, 4], banks=8, cycles=1000)
        assert [c.queue_depth for c in cells] == [2, 4]
        assert all(c.delay_rows == 4096 for c in cells)

    def test_load_grid_sweeps_load(self):
        cells = load_grid([0.5, 1.0], cycles=1000)
        assert [c.load for c in cells] == [0.5, 1.0]
        assert cells[0].idle_probability == pytest.approx(0.5)

    def test_loads_cross_product(self):
        cells = fig6_grid([1, 2], loads=[0.5, 1.0], cycles=1000)
        assert len(cells) == 4
        assert len({c.cell_id for c in cells}) == 4

    def test_cell_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CellSpec(banks=4, queue_depth=2, delay_rows=8, load=0.0)
        with pytest.raises(ConfigurationError):
            CellSpec(banks=4, queue_depth=2, delay_rows=8, load=1.5)
        with pytest.raises(ConfigurationError):
            CellSpec(banks=4, queue_depth=2, delay_rows=8, cycles=0)
        with pytest.raises(ConfigurationError):
            CellSpec(banks=4, queue_depth=2, delay_rows=8, lanes=0)


class TestManifest:
    def test_run_records_status_and_throughput(self, tmp_path):
        campaign = SweepCampaign(str(tmp_path), CELLS, seed=3,
                                 shard_lanes=2)
        campaign.run()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["version"] == 1
        assert len(manifest["order"]) == len(CELLS)
        for cell_id in manifest["order"]:
            entry = manifest["cells"][cell_id]
            assert entry["status"] == "done"
            assert entry["elapsed_s"] >= 0
            assert entry["lane_cycles_per_s"] > 0
            assert entry["shards"] == {"total": 2, "restored": 0,
                                       "computed": 2}
            result = entry["result"]
            assert result["total_cycles"] == 4 * 4_000
            assert result["total_stalls"] == (
                result["delay_storage_stalls"]
                + result["bank_queue_stalls"])

    def test_requires_cells_or_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepCampaign(str(tmp_path / "nowhere"))

    def test_rejects_empty_grid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepCampaign(str(tmp_path), [])

    def test_reattach_without_cells(self, tmp_path):
        SweepCampaign(str(tmp_path), CELLS, seed=3, shard_lanes=2).run()
        attached = SweepCampaign(str(tmp_path))
        status = attached.status()
        assert status["cells_done"] == len(CELLS)
        assert status["shard_lanes"] == 2  # execution knobs remembered
        assert attached.cell_specs() == {
            c.cell_id: c for c in CELLS}

    def test_corrupt_manifest_is_an_error(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{ nope")
        with pytest.raises(ConfigurationError):
            SweepCampaign(str(tmp_path), CELLS)

    def test_fingerprint_skew_demotes_cell(self, tmp_path):
        campaign = SweepCampaign(str(tmp_path), CELLS, seed=3,
                                 shard_lanes=2)
        campaign.run()
        path = tmp_path / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        first = manifest["order"][0]
        manifest["cells"][first]["fingerprint"] = "stale-version"
        path.write_text(json.dumps(manifest))
        reopened = SweepCampaign(str(tmp_path))
        entry = reopened.status()["cells"]
        assert entry[0]["status"] == "pending"
        assert entry[1]["status"] == "done"


class TestKernelRecording:
    """The manifest pins the kernel name *and* its compiled backend
    (DESIGN.md §13): resuming under a different kernel or backend is
    refused instead of silently mixing engines in one campaign."""

    def test_manifest_records_kernel_and_backend(self, tmp_path):
        campaign = SweepCampaign(str(tmp_path), CELLS, seed=3,
                                 shard_lanes=2, wc_kernel="chunked")
        campaign.run()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["kernel"] == "chunked"
        assert manifest["kernel_backend"] == {"name": "chunked",
                                              "backend": "numpy"}
        status = campaign.status()
        assert status["kernel"] == "chunked"
        assert "kernel=chunked[numpy]" in campaign.render_status()

    def test_resume_with_different_kernel_refused(self, tmp_path):
        SweepCampaign(str(tmp_path), CELLS, seed=3, shard_lanes=2,
                      wc_kernel="chunked").run()
        with pytest.raises(ConfigurationError,
                           match="refusing to resume with 'reference'"):
            SweepCampaign(str(tmp_path), wc_kernel="reference")

    def test_resume_across_backends_refused(self, tmp_path):
        SweepCampaign(str(tmp_path), CELLS, seed=3, shard_lanes=2,
                      wc_kernel="chunked").run()
        path = tmp_path / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        # Simulate the checkpoint having been produced by a different
        # compiled backend (say numba on another machine).
        manifest["kernel_backend"] = {"name": "jit",
                                      "backend": "numba-0.57.0"}
        path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="backend"):
            SweepCampaign(str(tmp_path))

    def test_kernelless_reattach_keeps_recorded_kernel(self, tmp_path):
        SweepCampaign(str(tmp_path), CELLS, seed=3, shard_lanes=2,
                      wc_kernel="chunked").run()
        attached = SweepCampaign(str(tmp_path))
        assert attached.status()["kernel"] == "chunked"

    @needs_compiled
    def test_jit_campaign_aggregates_match_chunked(self, tmp_path):
        jit = SweepCampaign(str(tmp_path / "jit"), CELLS, seed=3,
                            shard_lanes=2, wc_kernel="jit")
        jit.run()
        chunked = SweepCampaign(str(tmp_path / "chunked"), CELLS, seed=3,
                                shard_lanes=2, wc_kernel="chunked")
        chunked.run()
        assert _aggregates(jit) == _aggregates(chunked)
        manifest = json.loads(
            (tmp_path / "jit" / MANIFEST_NAME).read_text())
        assert manifest["kernel"] == "jit"
        assert manifest["kernel_backend"]["name"] == "jit"
        # Reattach under the same backend is fine.
        assert SweepCampaign(
            str(tmp_path / "jit")).status()["kernel"] == "jit"


class TestInterruptResume:
    def test_max_cells_interrupt_then_resume(self, tmp_path):
        interrupted = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                                    shard_lanes=2)
        first = interrupted.run(max_cells=1)
        assert len(first) == 1
        assert interrupted.status()["cells_done"] == 1

        resumed = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3)
        second = resumed.run()
        assert len(second) == 1  # only the pending cell ran

        straight = SweepCampaign(str(tmp_path / "b"), CELLS, seed=3,
                                 shard_lanes=2)
        straight.run()
        assert _aggregates(resumed) == _aggregates(straight)

    def test_mid_cell_kill_resumes_from_shard_checkpoints(self, tmp_path):
        """A crash inside a cell loses no finished shard."""
        class Kill(Exception):
            pass

        def bomb(cell_id, shard, total, restored, elapsed):
            if shard == 0 and not restored:
                raise Kill

        campaign = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                                 shard_lanes=2)
        with pytest.raises(Kill):
            campaign.run(progress=bomb)
        # The manifest never saw the cell finish...
        assert campaign.status()["cells_done"] == 0
        # ...but shard 0's checkpoint landed before the callback fired.
        first_cell = campaign.order[0]
        shard_files = os.listdir(tmp_path / "a" / "cells" / first_cell)
        assert "shard_00000.json" in shard_files

        events = []
        resumed = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3)
        resumed.run(progress=lambda *args: events.append(args))
        restored = [e for e in events if e[3]]
        assert len(restored) == 1  # the surviving shard, not recomputed

        straight = SweepCampaign(str(tmp_path / "b"), CELLS, seed=3,
                                 shard_lanes=2)
        straight.run()
        assert _aggregates(resumed) == _aggregates(straight)

    def test_done_cells_restore_without_compute(self, tmp_path,
                                                monkeypatch):
        campaign = SweepCampaign(str(tmp_path), CELLS, seed=3,
                                 shard_lanes=2)
        campaign.run()

        def boom(args):
            raise AssertionError("shard recomputed on a done campaign")

        monkeypatch.setattr("repro.sim.batchrunner._run_shard", boom)
        reopened = SweepCampaign(str(tmp_path))
        assert reopened.run() == {}  # nothing pending
        reports = reopened.reports()  # restored purely from checkpoints
        assert all(r.total_stalls > 0 for r in reports.values())


class TestDeterminism:
    def test_seeds_stable_across_sessions(self, tmp_path):
        a = SweepCampaign(str(tmp_path / "a"), CELLS, seed=9)
        b = SweepCampaign(str(tmp_path / "b"), CELLS, seed=9)
        assert [a.status()["cells"][i]["seed"] for i in range(len(CELLS))] \
            == [b.status()["cells"][i]["seed"] for i in range(len(CELLS))]

    def test_campaign_seed_matters(self, tmp_path):
        a = SweepCampaign(str(tmp_path / "a"), CELLS, seed=1)
        b = SweepCampaign(str(tmp_path / "b"), CELLS, seed=2)
        assert a.status()["cells"][0]["seed"] \
            != b.status()["cells"][0]["seed"]

    def test_worker_count_invariance(self, tmp_path):
        inline = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                               shard_lanes=2, workers=1)
        inline.run()
        pooled = SweepCampaign(str(tmp_path / "b"), CELLS, seed=3,
                               shard_lanes=2, workers=2)
        pooled.run()
        assert _aggregates(inline) == _aggregates(pooled)


class TestSharedPool:
    """The cross-cell shared worker pool (``workers > 1``).

    All pending cells' shards interleave through one spawn pool; the
    grid-order publication cursor must keep everything observable —
    manifest statistics and the event stream's deterministic channel —
    identical to a serial run, and shard checkpoints must land eagerly
    enough that interrupts lose no completed work.
    """

    def test_manifest_and_event_stream_worker_invariant(self, tmp_path):
        serial = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                               shard_lanes=2, workers=1)
        serial.run()
        pooled = SweepCampaign(str(tmp_path / "b"), CELLS, seed=3,
                               shard_lanes=2, workers=2)
        pooled.run()
        assert _manifest_stats(tmp_path / "a") \
            == _manifest_stats(tmp_path / "b")
        assert _event_skeleton(tmp_path / "a") \
            == _event_skeleton(tmp_path / "b")

    def test_mid_campaign_resume_under_shared_pool(self, tmp_path):
        pooled = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                               shard_lanes=2, workers=2)
        assert len(pooled.run(max_cells=1)) == 1
        resumed = SweepCampaign(str(tmp_path / "a"), workers=2)
        assert len(resumed.run()) == 1  # only the pending cell ran

        serial = SweepCampaign(str(tmp_path / "b"), CELLS, seed=3,
                               shard_lanes=2, workers=1)
        serial.run()
        assert _manifest_stats(tmp_path / "a") \
            == _manifest_stats(tmp_path / "b")

    def test_pool_checkpoints_shards_before_publication(self, tmp_path):
        """A crash at first publication still finds cell 0 checkpointed."""
        class Kill(Exception):
            pass

        def bomb(cell_id, shard, total, restored, elapsed):
            raise Kill

        pooled = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                               shard_lanes=2, workers=2)
        with pytest.raises(Kill):
            pooled.run(progress=bomb)
        assert pooled.status()["cells_done"] == 0
        # Publication only happens once a cell's plan is whole, so both
        # of cell 0's shards hit disk before the callback could fire.
        first_cell = pooled.order[0]
        shard_files = os.listdir(tmp_path / "a" / "cells" / first_cell)
        assert {"shard_00000.json", "shard_00001.json"} <= set(shard_files)

        events = []
        resumed = SweepCampaign(str(tmp_path / "a"), CELLS, seed=3,
                                workers=2)
        resumed.run(progress=lambda *args: events.append(args))
        restored = [e for e in events if e[3]]
        assert len(restored) >= 2  # cell 0 restored, never recomputed

        serial = SweepCampaign(str(tmp_path / "b"), CELLS, seed=3,
                               shard_lanes=2, workers=1)
        serial.run()
        # The restored/computed shard split legitimately differs after a
        # resume; everything the cells *measured* must not.
        assert _aggregates(resumed) == _aggregates(serial)
        drop_shards = {
            cell: stats[:3] + stats[4:]
            for cell, stats in _manifest_stats(tmp_path / "a").items()}
        assert drop_shards == {
            cell: stats[:3] + stats[4:]
            for cell, stats in _manifest_stats(tmp_path / "b").items()}


class TestObservability:
    def test_progress_reports_every_shard(self, tmp_path):
        events = []
        campaign = SweepCampaign(str(tmp_path), CELLS, seed=3,
                                 shard_lanes=2)
        campaign.run(progress=lambda *args: events.append(args))
        # 2 cells x 2 shards, all computed, elapsed monotone per cell.
        assert len(events) == 4
        assert all(not restored for (_, _, _, restored, _) in events)
        by_cell = {}
        for cell_id, shard, total, _, elapsed in events:
            assert total == 2
            by_cell.setdefault(cell_id, []).append((shard, elapsed))
        for pairs in by_cell.values():
            assert [shard for shard, _ in pairs] == [0, 1]
            assert pairs[0][1] <= pairs[1][1]

    def test_render_status_lists_cells(self, tmp_path):
        campaign = SweepCampaign(str(tmp_path), CELLS, seed=3)
        campaign.run(max_cells=1)
        text = campaign.render_status()
        assert "1/2 cells done" in text
        assert "pending" in text and "done" in text
        for cell in CELLS:
            assert cell.cell_id in text
