"""One bank's controller (paper Section 4.1–4.2, Figure 3).

Each bank controller owns a delay storage buffer, a bank access queue and
a write buffer, and pushes commands to its DRAM bank when the bus
scheduler grants it a memory-bus slot.  The controllers are fully
decoupled: "If each memory bank has its own controller, there is exactly
one request per cycle, and each controller ensures that the result of a
request is returned exactly D cycles later, then there is no need to
coordinate between the controllers."

Acceptance logic (Section 4.2, verbatim behaviour):

* read, CAM hit             → counter++, reply scheduled (merged; no bank
                              access — the "short-cut" of Figure 1);
* read, CAM miss            → allocate row via first-zero, counter := 1,
                              push (READ, row) to the bank access queue;
* read, no free row         → **delay storage buffer stall**;
* read, CAM hit saturated   → **delay storage buffer stall** (the C-bit
                              counter cannot count another requester and a
                              duplicate row would corrupt the CAM);
* write                     → push to write buffer + (WRITE) queue entry;
                              CAM hit additionally clears the row's
                              address-valid flag so new reads re-fetch;
* write, write buffer full  → **write buffer stall**;
* either, queue full        → **bank request queue stall**.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

from repro.core.bank_queue import BankAccessQueue
from repro.core.config import VPNMConfig
from repro.core.delay_storage import ConsumeResult, DelayStorageBuffer
from repro.core.request import Operation
from repro.core.write_buffer import WriteBuffer
from repro.dram.device import DRAMDevice


class AcceptResult(NamedTuple):
    """Outcome of offering one request to a bank controller."""

    accepted: bool
    merged: bool = False
    row_id: Optional[int] = None
    stall_reason: Optional[str] = None

    @classmethod
    def stall(cls, reason: str) -> "AcceptResult":
        return cls(accepted=False, stall_reason=reason)


class BankController:
    """Decoupled per-bank request controller."""

    def __init__(self, index: int, config: VPNMConfig, counter_bits: int):
        self.index = index
        self.config = config
        self.delay_storage = DelayStorageBuffer(
            rows=config.delay_rows, counter_bits=counter_bits
        )
        self.access_queue = BankAccessQueue(depth=config.queue_depth)
        self.write_buffer = WriteBuffer(depth=config.write_buffer_depth)
        self.accesses_issued = 0
        # Telemetry hooks; attach_metrics binds them to a registry.
        self._m_queue = None
        self._m_merged = None
        # Trace hook; attach_tracer binds it (None means tracing off).
        self._tracer = None
        self._trace_bank = index

    def attach_metrics(self, registry, banks: int) -> None:
        """Bind this bank's slice of the per-bank telemetry vectors.

        ``registry`` is a :class:`repro.obs.MetricsRegistry`; all banks
        of one controller share the vectors (``bank.queue_depth``,
        ``bank.delay_rows``, ``bank.write_buffer``, ``bank.merged``)
        indexed by bank id.  Without attachment every hook stays None
        and costs one predictable branch.
        """
        from repro.obs.metrics import BoundGauge

        self._m_queue = BoundGauge(
            registry.gauge_vector("bank.queue_depth", banks), self.index)
        self.delay_storage.gauge = BoundGauge(
            registry.gauge_vector("bank.delay_rows", banks), self.index)
        self.write_buffer.gauge = BoundGauge(
            registry.gauge_vector("bank.write_buffer", banks), self.index)
        self._m_merged = registry.counter_vector("bank.merged", banks)

    def attach_tracer(self, tracer, bank_id: Optional[int] = None) -> None:
        """Bind a :class:`repro.obs.trace.RequestTracer` to this bank.

        The delay storage gets a bank-bound view (it knows rows, not
        bank ids) — same binding trick as the occupancy ``BoundGauge``.
        ``bank_id`` overrides the id used in trace keys; a service with
        several controllers passes globally unique ids so (bank, row)
        keys cannot collide across controllers.
        """
        from repro.obs.trace import BoundBankTracer

        self._tracer = tracer
        self._trace_bank = self.index if bank_id is None else bank_id
        self.delay_storage.tracer = BoundBankTracer(tracer, self._trace_bank)

    # -- interface side --------------------------------------------------

    def _queue_has_room(self, bank_busy: bool) -> bool:
        """Whether one more request fits within Q *overlapping* requests.

        The paper defines Q as "the maximum number of overlapping
        requests that can be handled" (Figure 1: Q = D/L), so an access
        currently occupying the DRAM bank still holds its slot: only
        with that accounting does the normalized delay D = L*Q cover the
        worst legal backlog (Q-1 requests ahead plus our own access).
        """
        occupied = len(self.access_queue) + (1 if bank_busy else 0)
        return occupied < self.access_queue.depth

    def try_accept_read(self, line: int,
                        bank_busy: bool = False) -> AcceptResult:
        """Offer a read for DRAM line ``line`` (already bank-mapped).

        ``bank_busy`` says whether the DRAM bank is mid-access at this
        instant (the in-service request counts against Q — see
        :meth:`_queue_has_room`).
        """
        merging = self.config.merge_reads
        if merging:
            row_id = self.delay_storage.lookup(line)
            if row_id is not None:
                if not self.delay_storage.can_reference(row_id):
                    return AcceptResult.stall("delay_storage")
                self.delay_storage.add_reference(row_id)
                if self._m_merged is not None:
                    self._m_merged.inc(self.index)
                return AcceptResult(accepted=True, merged=True,
                                    row_id=row_id)
        if self.delay_storage.is_full:
            return AcceptResult.stall("delay_storage")
        if not self._queue_has_room(bank_busy):
            return AcceptResult.stall("bank_queue")
        row_id = self.delay_storage.allocate(line, cam_visible=merging)
        self.access_queue.push_read(row_id)
        if self._m_queue is not None:
            self._m_queue.set(len(self.access_queue))
        return AcceptResult(accepted=True, merged=False, row_id=row_id)

    def try_accept_write(self, line: int, data: Any,
                         bank_busy: bool = False) -> AcceptResult:
        """Offer a write; queues it and shadows any mergeable read row."""
        if self.write_buffer.is_full:
            return AcceptResult.stall("write_buffer")
        if not self._queue_has_room(bank_busy):
            return AcceptResult.stall("bank_queue")
        self.write_buffer.push(line, data)
        self.access_queue.push_write()
        if self._m_queue is not None:
            self._m_queue.set(len(self.access_queue))
        # A valid row for this address must stop matching new reads: they
        # are ordered after this write and must see the new data.
        self.delay_storage.invalidate_address(line)
        return AcceptResult(accepted=True)

    # -- memory side -------------------------------------------------------

    def has_work(self) -> bool:
        """Whether a command is waiting for a memory-bus slot."""
        return not self.access_queue.is_empty

    def issue_next(self, device: DRAMDevice, mem_now: int) -> None:
        """Issue the queue head to the DRAM bank at memory cycle ``mem_now``.

        The caller (bus scheduler) guarantees the bank is free and the
        bus slot is ours; the device re-checks both.
        """
        entry = self.access_queue.pop()
        if entry.operation is Operation.READ:
            line = self.delay_storage.address_of(entry.row_id)
            # Trace the command-issue boundary before fill() resolves the
            # row (on_fill drops the row -> request mapping).
            if self._tracer is not None:
                self._tracer.on_issue(self._trace_bank, entry.row_id)
            access = device.read(self.index, line, mem_now)
            self.delay_storage.fill(entry.row_id, access.data, access.ready_at)
        else:
            write = self.write_buffer.pop()
            device.write(self.index, write.line, write.data, mem_now)
        self.accesses_issued += 1
        if self._m_queue is not None:
            self._m_queue.set(len(self.access_queue))

    def deliver(self, row_id: int, mem_now: int) -> ConsumeResult:
        """Hand one due reply to the interface (state: waiting→completed)."""
        return self.delay_storage.consume(row_id, mem_now)

    # -- observability ----------------------------------------------------

    def occupancy(self) -> dict:
        """Current fill levels, for stats and tests."""
        return {
            "delay_rows": self.delay_storage.rows_used,
            "queue": len(self.access_queue),
            "write_buffer": len(self.write_buffer),
        }
