"""Per-tenant admission state: contracts, token buckets, queues.

A :class:`TenantSpec` is the tenant's *contract* with the service —
its admitted-request rate, burst allowance, queue bound and shedding
priority.  :class:`TokenBucket` enforces the rate deterministically in
interface cycles (no wall clock anywhere, so two identical runs make
identical admission decisions), and :class:`TenantState` is the live
ledger the service keeps per tenant.

Rate semantics (per-bank bandwidth regulation, Sullivan et al.): over
any window of ``W`` cycles a tenant is admitted at most
``burst + ceil(rate * W)`` requests — the classic token-bucket bound,
pinned by a Hypothesis property in ``tests/service``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Deque, Dict, List, Optional, Union

from repro.obs.metrics import latency_percentiles
from repro.obs.metrics import percentile as _percentile

#: What contract fields accept as a rate: exact rationals (``Fraction``
#: or strings like ``"1/10"``), floats (snapped to the nearest rational
#: with denominator <= 1e6 — the documented PR 6 behaviour), or None.
RateLike = Union[None, float, int, str, Fraction]


def parse_rate(value: RateLike) -> Optional[Fraction]:
    """Coerce a contract rate to the exact :class:`Fraction` it means.

    Strings parse exactly (``"1/10"`` and ``"0.1"`` are both exactly
    one tenth); ``Fraction``/``int`` pass through exactly.  Floats are
    binary approximations by construction, so they snap to the nearest
    rational with denominator <= 1e6 (``Fraction(0.1)`` is *not* 1/10;
    the snap recovers it).  This is the single entry point for rates —
    specs, the CLI and the socket transport all come through here.
    """
    if value is None:
        return None
    if isinstance(value, Fraction):
        rate = value
    elif isinstance(value, bool):
        raise ValueError(f"rate must be a number, got {value!r}")
    elif isinstance(value, int):
        rate = Fraction(value)
    elif isinstance(value, float):
        rate = Fraction(value).limit_denominator(1_000_000)
    elif isinstance(value, str):
        try:
            rate = Fraction(value.strip())
        except (ValueError, ZeroDivisionError) as error:
            raise ValueError(f"bad rate {value!r}: {error}")
    else:
        raise ValueError(f"rate must be None, a number, a Fraction or "
                         f"a 'p/q' string, got {type(value).__name__}")
    if rate <= 0:
        raise ValueError("rate must be positive (or None for unlimited)")
    return rate


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract.

    ``rate`` is admitted requests per interface cycle (``None`` =
    unlimited, admission control off for this tenant) and accepts
    exact rationals — ``Fraction(1, 10)`` or ``"1/10"`` — as well as
    floats (see :func:`parse_rate`); ``burst`` is the token-bucket
    depth; ``queue_limit`` bounds the tenant's pending queue (a full
    queue rejects with backpressure); ``priority`` orders graceful
    degradation — *lower* priorities are shed first — and, under the
    ``priority`` arbiter, strict service order; ``weight`` is the
    tenant's WDRR service share (credits per rotation are
    ``weight * quantum``).

    ``slo_p99`` is an optional latency objective in interface cycles:
    the service tracks a rolling p99 and, when ``rate`` is set, nudges
    the admitted rate between ``slo_rate_floor`` and
    ``slo_rate_ceiling`` (defaults: rate/4 and rate) to chase it —
    DReAM-style pressure-adaptive contracts.
    """

    name: str
    priority: int = 0
    rate: RateLike = None
    burst: int = 8
    queue_limit: int = 64
    weight: int = 1
    slo_p99: Optional[int] = None
    slo_rate_floor: RateLike = None
    slo_rate_ceiling: RateLike = None
    slo_window: int = 256

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        # Normalize every rate-like field to its exact Fraction once.
        object.__setattr__(self, "rate", parse_rate(self.rate))
        object.__setattr__(self, "slo_rate_floor",
                           parse_rate(self.slo_rate_floor))
        object.__setattr__(self, "slo_rate_ceiling",
                           parse_rate(self.slo_rate_ceiling))
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        if self.slo_p99 is not None and self.slo_p99 < 1:
            raise ValueError("slo_p99 must be >= 1 cycle")
        if self.slo_window < 1:
            raise ValueError("slo_window must be >= 1")
        if (self.slo_rate_floor is not None
                or self.slo_rate_ceiling is not None):
            if self.slo_p99 is None:
                raise ValueError("slo rate bounds need slo_p99 set")
            if self.rate is None:
                raise ValueError("slo rate bounds need a contracted rate")
        floor, ceiling = self.slo_rate_bounds
        if floor is not None and ceiling is not None and floor > ceiling:
            raise ValueError("slo_rate_floor must be <= slo_rate_ceiling")

    @property
    def rate_or_sentinel(self) -> float:
        """The rate as a float, -1.0 meaning unlimited (event payloads)."""
        return -1.0 if self.rate is None else float(self.rate)

    @property
    def adaptive(self) -> bool:
        """True when the SLO controller may move this tenant's rate."""
        return self.slo_p99 is not None and self.rate is not None

    @property
    def slo_rate_bounds(self) -> tuple:
        """Resolved (floor, ceiling) Fractions for the rate controller.

        Defaults: floor = rate/4, ceiling = the contracted rate itself
        (the SLO controller gives latency back by admitting *less*;
        raise the ceiling explicitly to let a compliant tenant borrow
        headroom above its contract).
        """
        if not self.adaptive:
            return (None, None)
        floor = (self.rate / 4 if self.slo_rate_floor is None
                 else self.slo_rate_floor)
        ceiling = (self.rate if self.slo_rate_ceiling is None
                   else self.slo_rate_ceiling)
        return (floor, ceiling)


class TokenBucket:
    """Cycle-driven token bucket with exact (Fraction) accounting.

    Refill is lazy — tokens accrue ``rate`` per elapsed cycle at grant
    time — so an idle tenant costs nothing per tick.  Exact rational
    arithmetic keeps two runs (and two platforms) bit-identical, which
    the event-determinism test relies on.
    """

    __slots__ = ("rate", "capacity", "_tokens", "_last_cycle")

    def __init__(self, rate: RateLike, burst: int):
        self.rate = parse_rate(rate)
        self.capacity = Fraction(burst)
        self._tokens = self.capacity
        self._last_cycle = 0

    def _refill(self, cycle: int) -> None:
        if self.rate is not None and cycle > self._last_cycle:
            self._tokens = min(
                self.capacity,
                self._tokens + self.rate * (cycle - self._last_cycle),
            )
        self._last_cycle = max(self._last_cycle, cycle)

    def try_grant(self, cycle: int) -> bool:
        """Spend one token at ``cycle``; False means over-rate (throttle)."""
        if self.rate is None:
            return True
        self._refill(cycle)
        if self._tokens >= 1:
            self._tokens -= 1
            return True
        return False

    def set_rate(self, rate: RateLike, cycle: int) -> None:
        """Change the refill rate at ``cycle`` (the SLO controller's knob).

        Tokens accrued under the old rate are credited first, so the
        change is exact from ``cycle`` onward and never retroactive.
        """
        self._refill(cycle)
        self.rate = parse_rate(rate)

    @property
    def tokens(self) -> float:
        """Current token level (diagnostic only)."""
        return float(self._tokens)

    @property
    def tokens_exact(self) -> Fraction:
        """Current token level as the exact Fraction (tests)."""
        return self._tokens


class SLOTracker:
    """Rolling-window latency tracker behind a tenant's SLO contract.

    Keeps the last ``window`` completion latencies in a ring and
    answers the rolling p99 the adaptive rate controller compares
    against ``TenantSpec.slo_p99``.  Pure integers and a fixed-size
    deque: deterministic, O(1) per completion, O(n log n) only at the
    (stride-gated) check points.
    """

    __slots__ = ("window", "_ring", "breached", "observed", "breaches")

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("slo window must be >= 1")
        self.window = window
        self._ring: Deque[int] = deque(maxlen=window)
        #: Current breach state (edge-signalled by the service).
        self.breached = False
        self.observed = 0
        self.breaches = 0

    def observe(self, latency: int) -> None:
        self._ring.append(latency)
        self.observed += 1

    def quantile(self, q: float) -> Optional[float]:
        """Rolling-window quantile (nearest-rank, the shared
        :func:`repro.obs.metrics.percentile` rule); None before any
        completion."""
        return _percentile(list(self._ring), q)

    def p99(self) -> Optional[float]:
        """Rolling-window p99, or None before any completion."""
        return self.quantile(0.99)

    def snapshot(self) -> Dict[str, float]:
        """Full rolling percentiles (the socket ``info`` op payload)."""
        return percentiles(list(self._ring))


@dataclass
class TenantCounts:
    """The per-tenant request ledger.

    Conservation invariants (asserted by the property tests):

    * ``submitted == admitted + throttled + backpressured + shed``
    * ``admitted == completed + dropped + in_flight + queued``
      (``in_flight`` and ``queued`` are zero once the service quiesces).
    """

    submitted: int = 0
    admitted: int = 0
    throttled: int = 0        # token bucket empty (over contracted rate)
    backpressured: int = 0    # bounded tenant queue full
    shed: int = 0             # rejected while degraded (low priority)
    completed: int = 0
    dropped: int = 0          # controller rejected under the drop policy
    controller_stalls: int = 0  # rejected offers retried (stall policy)

    @property
    def rejected(self) -> int:
        return self.throttled + self.backpressured + self.shed

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "throttled": self.throttled,
            "backpressured": self.backpressured,
            "shed": self.shed,
            "completed": self.completed,
            "dropped": self.dropped,
            "controller_stalls": self.controller_stalls,
        }


class TenantState:
    """Live state the service keeps for one registered tenant."""

    __slots__ = ("spec", "index", "controller_index", "bucket", "queue",
                 "counts", "in_flight", "latencies", "latency_cap",
                 "latencies_dropped", "backpressure_engaged", "shed_active",
                 "window_admitted", "window_completed", "window_rejected",
                 "window_dropped", "window_latencies", "slo")

    def __init__(self, spec: TenantSpec, index: int, controller_index: int,
                 latency_cap: int = 1_000_000):
        self.spec = spec
        self.index = index
        self.controller_index = controller_index
        self.bucket = TokenBucket(spec.rate, spec.burst)
        #: Rolling SLO latency tracker (None without an slo_p99 contract).
        self.slo: Optional[SLOTracker] = (
            SLOTracker(spec.slo_window) if spec.slo_p99 is not None else None)
        #: Pending (admitted, not yet controller-accepted) requests.
        self.queue: Deque = deque()
        self.counts = TenantCounts()
        self.in_flight = 0
        #: Completed-request service latencies (submit -> reply cycles).
        self.latencies: List[int] = []
        self.latency_cap = latency_cap
        self.latencies_dropped = 0
        self.backpressure_engaged = False
        self.shed_active = False
        # Current-window accumulators (reset at each window boundary).
        self.window_admitted = 0
        self.window_completed = 0
        self.window_rejected = 0
        self.window_dropped = 0
        self.window_latencies: List[int] = []

    def record_latency(self, latency: int) -> None:
        self.counts.completed += 1
        self.window_completed += 1
        self.window_latencies.append(latency)
        if self.slo is not None:
            self.slo.observe(latency)
        if len(self.latencies) < self.latency_cap:
            self.latencies.append(latency)
        else:
            self.latencies_dropped += 1

    def reset_window(self) -> None:
        self.window_admitted = 0
        self.window_completed = 0
        self.window_rejected = 0
        self.window_dropped = 0
        self.window_latencies = []


def percentiles(values: List[int]) -> Dict[str, float]:
    """p50/p95/p99/max of a latency sample (nearest-rank, deterministic).

    Thin alias for :func:`repro.obs.metrics.latency_percentiles` — the
    one place the rank rule lives — kept because every service event
    payload and report imports it from here.
    """
    return latency_percentiles(values)
