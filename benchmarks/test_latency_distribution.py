"""EXT4 — latency distributions: the determinism claim, measured.

The virtual pipeline's defining property is not *low* latency but
*constant* latency: "the memory can be treated as a flat deeply
pipelined memory with fully deterministic latency no matter what the
memory access pattern is."  This bench runs identical mixed traffic
through VPNM and the conventional banked controller and prints both
latency distributions: VPNM's collapses to the single point D, the
conventional one spreads with contention.
"""

import random
from collections import Counter

from repro.apps.baselines import ConventionalController
from repro.core import VPNMConfig, VPNMController, read_request

from _report import report

REQUESTS = 3000


def run_both():
    rng = random.Random(21)
    addresses = [rng.getrandbits(20) for _ in range(REQUESTS)]

    vpnm = VPNMController(
        VPNMConfig(banks=32, queue_depth=8, delay_rows=32, hash_latency=0,
                   address_bits=20, stall_policy="drop"),
        seed=22,
    )
    vpnm_latencies = []
    for address in addresses:
        result = vpnm.step(read_request(address))
        vpnm_latencies.extend(r.latency for r in result.replies)
    vpnm_latencies.extend(r.latency for r in vpnm.drain())

    conventional = ConventionalController(banks=32, bank_latency=20,
                                          queue_depth=8, bus_scaling=1.3)
    conventional_latencies = []
    for address in addresses:
        completions = conventional.step(read_request(address))
        conventional_latencies.extend(c.latency for c in completions)
    conventional_latencies.extend(
        c.latency for c in conventional.drain()
    )
    return vpnm, vpnm_latencies, conventional, conventional_latencies


def _histogram_lines(latencies, buckets=8):
    counter = Counter(latencies)
    lo, hi = min(latencies), max(latencies)
    if lo == hi:
        return [f"  {lo:>5} cycles: {'#' * 40} (100.0%, all "
                f"{len(latencies)} replies)"]
    width = max(1, (hi - lo + buckets) // buckets)
    lines = []
    for start in range(lo, hi + 1, width):
        count = sum(c for v, c in counter.items()
                    if start <= v < start + width)
        share = count / len(latencies)
        lines.append(f"  {start:>5}-{start + width - 1:<5} "
                     f"{'#' * int(share * 40):<40} {share:6.1%}")
    return lines


def test_latency_distribution(benchmark):
    vpnm, vpnm_lat, conventional, conv_lat = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # VPNM: a single point, exactly D, zero variance.
    assert len(set(vpnm_lat)) == 1
    assert vpnm_lat[0] == vpnm.normalized_delay
    assert vpnm.stats.late_replies == 0

    # Conventional: variable latency with a real spread.
    assert len(set(conv_lat)) > 5
    assert max(conv_lat) > min(conv_lat) + 10

    lines = [f"identical uniform traffic, {REQUESTS} reads",
             "",
             f"VPNM (D = {vpnm.normalized_delay}):"]
    lines += _histogram_lines(vpnm_lat)
    lines += ["", "conventional banked controller:"]
    lines += _histogram_lines(conv_lat)
    lines.append("")
    lines.append(
        f"conventional mean {sum(conv_lat) / len(conv_lat):.1f}, "
        f"min {min(conv_lat)}, max {max(conv_lat)} — lower on average, "
        "unboundedly variable; VPNM trades mean latency for a hard "
        "guarantee (the right trade for line-rate guarantees, Sec 3.2)"
    )
    report("latency_distribution", "\n".join(lines))
