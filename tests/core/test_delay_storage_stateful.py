"""Stateful (rule-based) fuzzing of the delay storage buffer.

Hypothesis drives random interleavings of allocate / merge / invalidate
/ fill / consume against a shadow model, checking after every step that
the CAM, the refcounts, and the free list stay mutually consistent —
the invariants a hardware verification bench would assert.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.delay_storage import DelayStorageBuffer

ROWS = 6
COUNTER_BITS = 3  # max 7 references


class DelayStorageMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.buffer = DelayStorageBuffer(rows=ROWS,
                                         counter_bits=COUNTER_BITS)
        # shadow model: row_id -> [address, cam_visible, refcount, pending]
        # pending = the row's bank access has not completed (fill) yet;
        # a row frees only once refcount == 0 AND pending is False.
        self.live = {}
        self.clock = 0

    def _maybe_free(self, row_id):
        address, visible, count, pending = self.live[row_id]
        if count == 0 and not pending:
            del self.live[row_id]

    # -- rules -------------------------------------------------------------

    @rule(address=st.integers(0, 15), visible=st.booleans())
    def allocate(self, address, visible):
        cam_hit = self.buffer.lookup(address) is not None
        row_id = None
        if not (visible and cam_hit):
            row_id = self.buffer.allocate(address, cam_visible=visible)
        if row_id is not None:
            assert row_id not in self.live
            self.live[row_id] = [address, visible, 1, True]

    @rule(address=st.integers(0, 15))
    def merge(self, address):
        row_id = self.buffer.lookup(address)
        if row_id is None:
            return
        if self.buffer.can_reference(row_id):
            self.buffer.add_reference(row_id)
            self.live[row_id][2] += 1

    @rule(address=st.integers(0, 15))
    def invalidate(self, address):
        row_id = self.buffer.invalidate_address(address)
        if row_id is not None:
            assert self.live[row_id][1] is True
            self.live[row_id][1] = False

    @precondition(lambda self: any(v[3] for v in self.live.values()))
    @rule(data=st.data())
    def fill(self, data):
        candidates = sorted(r for r, v in self.live.items() if v[3])
        row_id = data.draw(st.sampled_from(candidates))
        self.clock += 1
        self.buffer.fill(row_id, f"payload-{self.clock}", self.clock)
        self.live[row_id][3] = False
        self._maybe_free(row_id)

    @precondition(lambda self: any(v[2] > 0 for v in self.live.values()))
    @rule(data=st.data())
    def consume(self, data):
        candidates = sorted(r for r, v in self.live.items() if v[2] > 0)
        row_id = data.draw(st.sampled_from(candidates))
        self.clock += 1
        self.buffer.consume(row_id, self.clock)
        self.live[row_id][2] -= 1
        self._maybe_free(row_id)

    # -- invariants --------------------------------------------------------

    @invariant()
    def rows_used_matches_model(self):
        assert self.buffer.rows_used == len(self.live)

    @invariant()
    def cam_matches_visible_rows(self):
        visible = {address: row_id
                   for row_id, (address, vis, _, _p) in self.live.items()
                   if vis}
        assert self.buffer._cam == visible

    @invariant()
    def refcounts_match(self):
        for row_id, (_, _, count, pending) in self.live.items():
            row = self.buffer.rows[row_id]
            assert row.counter == count
            assert row.access_pending == pending
            assert 0 <= count <= self.buffer.max_count
            assert count > 0 or pending  # otherwise it would be free

    @invariant()
    def free_rows_are_clean(self):
        for row_id in range(ROWS):
            if row_id not in self.live:
                row = self.buffer.rows[row_id]
                assert row.counter == 0
                assert not row.access_pending
                assert not row.address_valid

    @invariant()
    def capacity_accounting(self):
        assert 0 <= self.buffer.rows_used <= ROWS
        assert self.buffer.is_full == (self.buffer.rows_used == ROWS)


TestDelayStorageStateful = DelayStorageMachine.TestCase
TestDelayStorageStateful.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)
