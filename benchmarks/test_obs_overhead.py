"""Telemetry overhead on the vectorized batch engine.

Two acceptance bounds from the telemetry layer's design contract
(DESIGN.md §9), both recorded in ``results/obs_overhead.txt``:

* **Telemetry off** must be free: the off-path code is a handful of
  ``if telemetry`` branches, so two identical telemetry-off runs must
  time within 3% of each other — the overhead is indistinguishable
  from machine noise.
* **Telemetry on** at a production stride (>= 1000) must cost < 15%
  over telemetry-off on the same workload.

Timing interleaves the arms round-robin and takes each arm's best of
10 rounds (same rationale as ``test_perf_batchsim.py``: the minimum is
the robust estimator under external interference, and interleaving
spreads slow drift across all arms instead of one).
"""

import time

from repro.core import VPNMConfig
from repro.sim.batchsim import BatchStallSimulator

from _report import report

CYCLES = 1_000_000
LANES = 8
ROUNDS = 10
STRIDE = 1000

OFF_PATH_BOUND = 0.03
ON_PATH_BOUND = 0.15


def _config():
    # The Figure-4 headline configuration: the engine's hot loop with
    # all structures (queues, delay ring, bus ratio) live.
    return VPNMConfig(banks=64, bank_latency=20, queue_depth=8,
                      delay_rows=32, bus_scaling=1.3, hash_latency=0,
                      skip_idle_slots=False)


def _time(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_obs_overhead(fast_mode):
    config = _config()
    seeds = list(range(1, LANES + 1))

    def run(stride):
        return BatchStallSimulator(config, seeds).run(
            CYCLES, telemetry_stride=stride)

    # Round-robin interleaving: every round times all three arms, so
    # slow drift in machine load hits the arms evenly and the per-arm
    # minimum filters it out.
    run(None)  # warm-up (allocator, numpy caches)
    off_a = on = off_b = None
    for _ in range(ROUNDS):
        a = _time(lambda: run(None))
        mid = _time(lambda: run(STRIDE))
        b = _time(lambda: run(None))
        off_a = a if off_a is None else min(off_a, a)
        on = mid if on is None else min(on, mid)
        off_b = b if off_b is None else min(off_b, b)

    off = min(off_a, off_b)
    off_path = abs(off_a - off_b) / min(off_a, off_b)
    on_path = (on - off) / off

    lines = [
        "telemetry overhead, strict batch engine "
        f"(B=64 L=20 Q=8 K=32 R=1.3, {LANES} lanes x {CYCLES} cycles, "
        f"interleaved best of {ROUNDS})",
        "",
        f"{'arm':<28} {'seconds':>9} {'overhead':>9}",
        f"{'telemetry off (run A)':<28} {off_a:>9.3f} {'-':>9}",
        f"{'telemetry off (run B)':<28} {off_b:>9.3f} "
        f"{off_path:>8.1%}",
        f"{'telemetry stride=' + str(STRIDE):<28} {on:>9.3f} "
        f"{on_path:>8.1%}",
        "",
        f"off-path (A/B noise floor)   {off_path:.1%}  "
        f"(bound < {OFF_PATH_BOUND:.0%}: telemetry-off adds only dead "
        "branches)",
        f"on-path  (stride={STRIDE})       {on_path:.1%}  "
        f"(bound < {ON_PATH_BOUND:.0%})",
    ]
    report("obs_overhead", "\n".join(lines))

    assert off_path < OFF_PATH_BOUND, (
        f"telemetry-off A/B spread {off_path:.1%} exceeds "
        f"{OFF_PATH_BOUND:.0%}")
    assert on_path < ON_PATH_BOUND, (
        f"telemetry on-path overhead {on_path:.1%} exceeds "
        f"{ON_PATH_BOUND:.0%}")
