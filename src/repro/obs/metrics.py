"""Metrics registry: counters, gauges, fixed-bucket histograms.

Naming convention (DESIGN.md §9): dotted ``subsystem.metric`` paths —
``ctrl.reads_accepted``, ``bus.slots_used``, ``bank.queue_depth``.
Per-bank instruments are *vectors* indexed by bank id rather than one
name per bank, so a 64-bank controller costs one instrument, not 64
dict entries, and a heatmap reads the whole vector at once.

Two implementations share the interface:

* :class:`MetricsRegistry` — the recording one.  Instruments are
  created idempotently (same name → same object) and the whole registry
  serializes with :meth:`MetricsRegistry.snapshot`.
* :class:`NullMetricsRegistry` (singleton :data:`NULL_REGISTRY`) — the
  telemetry-off fast path.  Every instrument it hands out is a shared
  do-nothing singleton, so an instrumented hot loop pays one attribute
  call per event and allocates nothing.  Code that cannot afford even
  that holds ``None`` instead and guards the call site (the batch
  engines gate all telemetry behind one branch).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def percentile_index(n: int, q: float) -> int:
    """Nearest-rank index into a sorted sample of ``n`` observations.

    The single rank rule shared by every percentile in the repo
    (service ledgers, SLO trackers, histograms, trace attribution):
    ``index = round(q * n) - 1``, clamped into ``[0, n-1]``.  Keeping
    one definition is what lets the trace report's "p99 request" be
    exactly the request whose latency the service reports as p99.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    return max(0, min(n - 1, int(q * n + 0.5) - 1))


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of a sample; None on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    return float(ordered[percentile_index(len(ordered), q)])


def latency_percentiles(values: Sequence[int]) -> Dict[str, float]:
    """p50/p95/p99/max/count of a latency sample (nearest-rank).

    Empty input returns an empty dict — event payloads carry that as
    "nothing completed this window".  This is the implementation behind
    ``repro.service.tenants.percentiles``.
    """
    if not values:
        return {}
    ordered = sorted(values)
    n = len(ordered)
    return {
        "p50": float(ordered[percentile_index(n, 0.50)]),
        "p95": float(ordered[percentile_index(n, 0.95)]),
        "p99": float(ordered[percentile_index(n, 0.99)]),
        "max": float(ordered[-1]),
        "count": float(n),
    }


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down; tracks its own peak."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class GaugeVector:
    """One gauge per integer index (e.g. per bank), with per-index peaks."""

    __slots__ = ("name", "values", "peaks")

    def __init__(self, name: str, size: int):
        self.name = name
        self.values: List[int] = [0] * size
        self.peaks: List[int] = [0] * size

    def set(self, index: int, value) -> None:
        self.values[index] = value
        if value > self.peaks[index]:
            self.peaks[index] = value

    @property
    def peak(self):
        return max(self.peaks) if self.peaks else 0


class BoundGauge:
    """One :class:`GaugeVector` slot with the scalar :class:`Gauge` API.

    Structures that know their occupancy but not their bank id (delay
    storage, write buffer) hold one of these, bound by the bank
    controller, so every bank still writes into a single vector.
    """

    __slots__ = ("vector", "index")

    def __init__(self, vector: GaugeVector, index: int):
        self.vector = vector
        self.index = index

    def set(self, value) -> None:
        self.vector.set(self.index, value)

    @property
    def value(self):
        return self.vector.values[self.index]

    @property
    def peak(self):
        return self.vector.peaks[self.index]


class CounterVector:
    """One counter per integer index (e.g. per bank)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, size: int):
        self.name = name
        self.values: List[int] = [0] * size

    def inc(self, index: int, amount: int = 1) -> None:
        self.values[index] += amount

    @property
    def total(self) -> int:
        return sum(self.values)


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are the inclusive upper bounds of each bin, strictly
    increasing; observations above the last bound land in the overflow
    bin, so ``counts`` has ``len(buckets) + 1`` entries and the total
    observation count is always ``sum(counts)``.
    """

    __slots__ = ("name", "buckets", "counts")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = list(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(later <= earlier
               for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)

    def observe(self, value) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile, resolved to a bucket upper bound.

        A histogram only knows which bin each observation fell in, so
        the answer is the upper bound of the bin holding the q-ranked
        observation — the same convention Prometheus applies to
        ``_bucket`` quantiles.  Returns None before any observation and
        ``math.inf`` when the rank lands in the overflow bin.
        """
        total = self.total
        if total == 0:
            return None
        rank = percentile_index(total, q)
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            if rank < cumulative:
                return float(bound)
        return math.inf


class MetricsRegistry:
    """Creates and owns instruments; same name always returns the same one."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    @property
    def enabled(self) -> bool:
        return True

    def _get(self, name: str, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def gauge_vector(self, name: str, size: int) -> GaugeVector:
        return self._get(name, lambda: GaugeVector(name, size), GaugeVector)

    def counter_vector(self, name: str, size: int) -> CounterVector:
        return self._get(name, lambda: CounterVector(name, size),
                         CounterVector)

    def histogram(self, name: str,
                  buckets: Sequence[float]) -> Histogram:
        return self._get(name, lambda: Histogram(name, buckets), Histogram)

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument's current state."""
        out: Dict[str, dict] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value,
                             "peak": instrument.peak}
            elif isinstance(instrument, GaugeVector):
                out[name] = {"type": "gauge_vector",
                             "values": list(instrument.values),
                             "peaks": list(instrument.peaks)}
            elif isinstance(instrument, CounterVector):
                out[name] = {"type": "counter_vector",
                             "values": list(instrument.values)}
            elif isinstance(instrument, Histogram):
                out[name] = {"type": "histogram",
                             "buckets": list(instrument.buckets),
                             "counts": list(instrument.counts)}
        return out


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0
    peak = 0

    def set(self, value) -> None:
        pass


class _NullGaugeVector:
    __slots__ = ()
    name = "null"
    values: List[int] = []
    peaks: List[int] = []
    peak = 0

    def set(self, index: int, value) -> None:
        pass


class _NullCounterVector:
    __slots__ = ()
    name = "null"
    values: List[int] = []
    total = 0

    def inc(self, index: int, amount: int = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    buckets: List[float] = []
    counts: List[int] = []
    total = 0

    def observe(self, value) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_GAUGE_VECTOR = _NullGaugeVector()
_NULL_COUNTER_VECTOR = _NullCounterVector()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Telemetry-off registry: every instrument is a shared no-op."""

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def gauge_vector(self, name: str, size: int) -> _NullGaugeVector:
        return _NULL_GAUGE_VECTOR

    def counter_vector(self, name: str, size: int) -> _NullCounterVector:
        return _NULL_COUNTER_VECTOR

    def histogram(self, name: str,
                  buckets: Sequence[float]) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {}


#: Shared telemetry-off registry.  ``registry or NULL_REGISTRY`` is the
#: canonical way to default an optional ``metrics`` parameter.
NULL_REGISTRY = NullMetricsRegistry()


def registry_or_null(
        registry: Optional[MetricsRegistry]) -> "MetricsRegistry":
    """Normalize an optional registry argument to a usable one."""
    return registry if registry is not None else NULL_REGISTRY
