"""Content inspection (signature matching) on VPNM.

"Packet inspection" is on the paper's list of data-plane algorithms to
map onto DRAM next, and its introduction motivates it directly: at high
line rates each packet may be "scanned for content" against worm/virus
signature sets too large for SRAM.  The natural engine is Aho-Corasick:
a DFA over bytes whose transition table is the irregular, pointer-heavy
structure that defeats hand-placed banking — and that VPNM hosts
naively.

Design: the automaton's transition table lives in DRAM, one line per
(state, input-byte) pair at ``state * 256 + byte``; matching consumes
exactly **one DRAM read per scanned byte**.  Like the LPM engine,
scanning is pipelined across many concurrent streams: each stream's
next transition issues as soon as its previous one replies, and with
enough streams the engine sustains one memory request per cycle — a
byte scanned per cycle, 8 gbps per GHz of request rate out of a single
controller.

Layers:

* :class:`AhoCorasick` — the functional automaton (build from patterns,
  goto/fail construction, streaming match oracle).
* :class:`VPNMInspectionEngine` — the memory-driven scanner.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import VPNMConfig
from repro.core.controller import VPNMController, read_request


@dataclass(frozen=True)
class Match:
    """A signature hit: pattern index, and the end offset in the stream."""

    pattern: int
    end: int


class AhoCorasick:
    """Classic Aho-Corasick automaton with precomputed full transitions.

    States are integers, 0 is the root.  After construction,
    ``transition[state][byte]`` is total (failure links are folded in),
    and ``output[state]`` lists the indices of patterns ending there —
    which is exactly the dense table the DRAM engine stores.
    """

    def __init__(self, patterns: Sequence[bytes]):
        if not patterns:
            raise ValueError("need at least one pattern")
        if any(not p for p in patterns):
            raise ValueError("patterns must be non-empty")
        self.patterns = [bytes(p) for p in patterns]
        # 1. goto trie
        goto: List[Dict[int, int]] = [{}]
        output: List[Set[int]] = [set()]
        for index, pattern in enumerate(self.patterns):
            state = 0
            for byte in pattern:
                if byte not in goto[state]:
                    goto.append({})
                    output.append(set())
                    goto[state][byte] = len(goto) - 1
                state = goto[state][byte]
            output[state].add(index)
        # 2. failure links (BFS) + output merging
        fail = [0] * len(goto)
        queue = deque(goto[0].values())
        while queue:
            state = queue.popleft()
            for byte, child in goto[state].items():
                queue.append(child)
                fallback = fail[state]
                while fallback and byte not in goto[fallback]:
                    fallback = fail[fallback]
                fail[child] = goto[fallback].get(byte, 0)
                if fail[child] == child:
                    fail[child] = 0
                output[child] |= output[fail[child]]
        # 3. dense total transition function
        self.transitions: List[List[int]] = []
        for state in range(len(goto)):
            row = [0] * 256
            for byte in range(256):
                cursor = state
                while cursor and byte not in goto[cursor]:
                    cursor = fail[cursor]
                row[byte] = goto[cursor].get(byte, 0)
            self.transitions.append(row)
        self.output: List[Tuple[int, ...]] = [
            tuple(sorted(s)) for s in output
        ]

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    def scan(self, data: bytes) -> List[Match]:
        """Functional streaming match (the oracle for the engine)."""
        state = 0
        matches = []
        for position, byte in enumerate(data):
            state = self.transitions[state][byte]
            for pattern in self.output[state]:
                matches.append(Match(pattern=pattern, end=position + 1))
        return matches


@dataclass
class _Stream:
    stream_id: int
    data: bytes
    position: int = 0
    state: int = 0
    matches: List[Match] = field(default_factory=list)


class VPNMInspectionEngine:
    """Pipelined Aho-Corasick scanning through a VPNM controller.

    The DRAM line at ``state * 256 + byte`` holds the tuple
    ``(next_state, output_patterns)``; scanning a byte is one read.
    """

    def __init__(self, automaton: AhoCorasick,
                 controller: Optional[VPNMController] = None):
        self.automaton = automaton
        self.controller = controller or VPNMController(VPNMConfig())
        needed = automaton.state_count * 256
        space = 1 << self.controller.config.address_bits
        if needed > space:
            raise ValueError(
                f"automaton needs {needed} lines, address space has {space}"
            )
        self._ready: Deque[_Stream] = deque()
        self._waiting: Dict[int, _Stream] = {}
        self._next_token = 0
        self.completed: List[_Stream] = []
        self.bytes_scanned = 0
        self.loaded = False

    def load_table(self) -> int:
        """Install the transition table into DRAM (control-plane work;
        poked directly, as with the LPM engine).  Returns entry count."""
        written = 0
        for state, row in enumerate(self.automaton.transitions):
            outputs = self.automaton.output
            for byte in range(256):
                next_state = row[byte]
                address = state * 256 + byte
                mapping = self.controller.mapper.map(address)
                self.controller.device.banks[mapping.bank]._store[
                    mapping.line
                ] = (next_state, outputs[next_state])
                written += 1
        self.loaded = True
        return written

    def submit(self, stream_id: int, data: bytes) -> None:
        """Queue one byte stream (e.g. a reassembled connection)."""
        if not self.loaded:
            raise RuntimeError("call load_table() before submitting streams")
        stream = _Stream(stream_id=stream_id, data=bytes(data))
        if stream.data:
            self._ready.append(stream)
        else:
            self.completed.append(stream)

    def step(self) -> None:
        """One interface cycle: issue at most one transition read."""
        request = None
        if self._ready:
            stream = self._ready[0]
            byte = stream.data[stream.position]
            address = stream.state * 256 + byte
            request = read_request(address, tag=("scan", self._next_token))
        result = self.controller.step(request)
        if request is not None and result.accepted:
            self._waiting[self._next_token] = self._ready.popleft()
            self._next_token += 1
        for reply in result.replies:
            if isinstance(reply.tag, tuple) and reply.tag[0] == "scan":
                self._absorb(reply)

    def _absorb(self, reply) -> None:
        stream = self._waiting.pop(reply.tag[1])
        next_state, outputs = reply.data
        stream.state = next_state
        stream.position += 1
        self.bytes_scanned += 1
        for pattern in outputs:
            stream.matches.append(Match(pattern=pattern, end=stream.position))
        if stream.position >= len(stream.data):
            self.completed.append(stream)
        else:
            self._ready.append(stream)

    def run_until_drained(self, limit: Optional[int] = None) -> None:
        if limit is None:
            pending_bytes = sum(len(s.data) - s.position
                                for s in self._ready) + len(self._waiting)
            per_byte = self.controller.config.normalized_delay + 2
            limit = (pending_bytes + 1) * per_byte + 100
        while self._ready or self._waiting:
            if limit <= 0:
                raise RuntimeError("inspection engine failed to drain")
            self.step()
            limit -= 1

    def scan_streams(
        self, streams: Iterable[Tuple[int, bytes]]
    ) -> Dict[int, List[Match]]:
        """Convenience: submit all, drain, return matches per stream id."""
        for stream_id, data in streams:
            self.submit(stream_id, data)
        self.run_until_drained()
        return {s.stream_id: s.matches for s in self.completed}

    def throughput_gbps(self, clock_mhz: float = 1000.0) -> float:
        """Scanned bits per second at a given interface clock."""
        if not self.controller.now:
            return 0.0
        bytes_per_cycle = self.bytes_scanned / self.controller.now
        return bytes_per_cycle * clock_mhz * 1e6 * 8 / 1e9
