"""Tests for VPNMConfig parameter validation and derived values."""

import pytest

from repro.core.config import PAPER_DESIGN_LADDER, VPNMConfig, paper_config
from repro.core.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_are_the_papers_running_example(self):
        cfg = VPNMConfig()
        assert cfg.banks == 32
        assert cfg.bank_latency == 20
        assert cfg.queue_depth == 8
        assert cfg.delay_rows == 32
        assert cfg.bus_scaling == 1.3

    @pytest.mark.parametrize("banks", [0, 3, 5, 12, 33])
    def test_non_power_of_two_banks_rejected(self, banks):
        with pytest.raises(ConfigurationError):
            VPNMConfig(banks=banks)

    def test_bad_scalars_rejected(self):
        with pytest.raises(ConfigurationError):
            VPNMConfig(bank_latency=0)
        with pytest.raises(ConfigurationError):
            VPNMConfig(queue_depth=0)
        with pytest.raises(ConfigurationError):
            VPNMConfig(delay_rows=0)
        with pytest.raises(ConfigurationError):
            VPNMConfig(bus_scaling=0.9)
        with pytest.raises(ConfigurationError):
            VPNMConfig(hash_latency=-1)
        with pytest.raises(ConfigurationError):
            VPNMConfig(counter_bits=0)
        with pytest.raises(ConfigurationError):
            VPNMConfig(data_bytes=0)
        with pytest.raises(ConfigurationError):
            VPNMConfig(write_buffer_depth=0)
        with pytest.raises(ConfigurationError):
            VPNMConfig(stall_policy="panic")

    def test_normalized_delay_default_is_lq_plus_hash(self):
        cfg = VPNMConfig(banks=32, bank_latency=20, queue_depth=8,
                         hash_latency=4)
        assert cfg.normalized_delay == 20 * 8 + 4

    def test_figure1_configuration(self):
        """The paper's Figure 1: D=30, L=15, Q = D/L = 2."""
        cfg = VPNMConfig(banks=1, bank_latency=15, queue_depth=2,
                         bus_scaling=1.0, hash_latency=0)
        assert cfg.normalized_delay == 30
        assert cfg.interleaved_capacity == 2

    def test_too_small_normalized_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            VPNMConfig(banks=1, bank_latency=15, queue_depth=2,
                       bus_scaling=1.0, hash_latency=0, normalized_delay=29)

    def test_explicit_normalized_delay_accepted_when_sufficient(self):
        cfg = VPNMConfig(banks=1, bank_latency=15, queue_depth=2,
                         bus_scaling=1.0, hash_latency=0, normalized_delay=40)
        assert cfg.normalized_delay == 40

    def test_strict_round_robin_inflates_default_delay(self):
        """With B > L and no slot skipping, grants come every B cycles."""
        lazy = VPNMConfig(banks=32, bank_latency=4, queue_depth=4,
                          skip_idle_slots=False, hash_latency=0,
                          bus_scaling=1.0)
        eager = VPNMConfig(banks=32, bank_latency=4, queue_depth=4,
                           skip_idle_slots=True, hash_latency=0,
                           bus_scaling=1.0)
        assert lazy.normalized_delay == 32 * 4      # Q * max(L, B)
        assert eager.normalized_delay == 4 * 4      # Q * L

    def test_write_buffer_defaults_to_half_queue(self):
        assert VPNMConfig(queue_depth=12).write_buffer_depth == 6
        assert VPNMConfig(queue_depth=1).write_buffer_depth == 1

    def test_counter_bits_autosized_to_delay(self):
        cfg = VPNMConfig()  # D = 164 -> 8 bits
        assert cfg.counter_bits == 8
        big = paper_config(3)  # Q=64, D=1284 -> 11 bits
        assert (1 << big.counter_bits) > big.normalized_delay

    def test_frozen(self):
        cfg = VPNMConfig()
        with pytest.raises(AttributeError):
            cfg.banks = 64


class TestDerivedValues:
    def test_bank_bits(self):
        assert VPNMConfig(banks=32).bank_bits == 5
        assert VPNMConfig(banks=1).bank_bits == 0

    def test_row_id_bits(self):
        assert VPNMConfig(delay_rows=32).row_id_bits == 5
        assert VPNMConfig(delay_rows=33).row_id_bits == 6
        assert VPNMConfig(delay_rows=1).row_id_bits == 1

    def test_delay_ns_at_1ghz(self):
        """Paper Table 3: Q=48 at 1 GHz gives 960 ns of delay."""
        cfg = paper_config(2, hash_latency=0)  # B=32, Q=48
        assert cfg.delay_ns(1000.0) == pytest.approx(960.0)

    def test_delay_ns_rejects_bad_clock(self):
        with pytest.raises(ConfigurationError):
            VPNMConfig().delay_ns(0)


class TestPaperLadder:
    def test_ladder_is_the_table2_progression(self):
        assert [p["queue_depth"] for p in PAPER_DESIGN_LADDER] == [24, 32, 48, 64]
        assert [p["delay_rows"] for p in PAPER_DESIGN_LADDER] == [48, 64, 96, 128]
        assert all(p["banks"] == 32 for p in PAPER_DESIGN_LADDER)

    def test_paper_config_bounds(self):
        with pytest.raises(ConfigurationError):
            paper_config(-1)
        with pytest.raises(ConfigurationError):
            paper_config(4)

    def test_paper_config_overrides(self):
        cfg = paper_config(0, bus_scaling=1.4, stall_policy="drop")
        assert cfg.bus_scaling == 1.4
        assert cfg.stall_policy == "drop"
        assert cfg.queue_depth == 24
