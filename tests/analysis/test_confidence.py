"""Unit tests for the Wilson binomial intervals behind batch error bars."""

import math

import pytest

from repro.analysis.confidence import (
    BinomialInterval,
    mts_interval,
    stall_probability_interval,
    wilson_interval,
)


class TestWilsonInterval:
    def test_brackets_the_point_estimate(self):
        ival = wilson_interval(40, 1000)
        assert ival.estimate == pytest.approx(0.04)
        assert 0.0 < ival.low < 0.04 < ival.high < 1.0

    def test_zero_successes_keeps_positive_upper_bound(self):
        """The rare-stall regime: no events observed is still information."""
        ival = wilson_interval(0, 10_000)
        assert ival.estimate == 0.0
        assert ival.low == 0.0
        assert 1e-6 < ival.high < 1e-3

    def test_all_successes(self):
        ival = wilson_interval(100, 100)
        assert ival.estimate == 1.0
        assert ival.high == 1.0
        assert ival.low < 1.0

    def test_narrows_with_more_trials(self):
        wide = wilson_interval(4, 100)
        narrow = wilson_interval(400, 10_000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_widens_with_confidence(self):
        ninety = wilson_interval(40, 1000, confidence=0.90)
        ninety_nine = wilson_interval(40, 1000, confidence=0.99)
        assert ninety_nine.low < ninety.low
        assert ninety_nine.high > ninety.high

    def test_non_tabulated_confidence_level(self):
        """Levels outside the z-table go through the rational approx."""
        tabulated = wilson_interval(40, 1000, confidence=0.95)
        nearby = wilson_interval(40, 1000, confidence=0.951)
        assert nearby.low == pytest.approx(tabulated.low, rel=1e-2)
        assert nearby.high == pytest.approx(tabulated.high, rel=1e-2)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=0.0)

    def test_contains(self):
        ival = BinomialInterval(estimate=0.5, low=0.4, high=0.6,
                                confidence=0.95)
        assert 0.4 in ival and 0.5 in ival and 0.6 in ival
        assert 0.39 not in ival and 0.61 not in ival


class TestMtsInterval:
    def test_inverts_the_probability_interval(self):
        """MTS = 1/p is monotone, so the bounds map straight through."""
        stalls, cycles = 50, 1_000_000
        prob = stall_probability_interval(stalls, cycles)
        mts, ival = mts_interval(stalls, cycles)
        assert mts == pytest.approx(cycles / stalls)
        assert ival.low == pytest.approx(1.0 / prob.high)
        assert ival.high == pytest.approx(1.0 / prob.low)
        assert ival.low < mts < ival.high

    def test_zero_stalls_is_a_lower_bound(self):
        mts, ival = mts_interval(0, 1_000_000)
        assert mts is None
        assert ival.high == math.inf
        assert ival.low > 0.0  # the data still lower-bounds MTS
