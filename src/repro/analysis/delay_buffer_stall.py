"""Section 5.1 — closed-form MTS of the delay storage buffer.

The paper's derivation: the delay buffer overflows if one bank receives
``K`` or more of the uniformly-random bank assignments within a window
of ``D`` cycles.  For any anchor request to a bank, the probability that
at least ``K - 1`` of the other ``D - 1`` assignments in its window hit
the same bank is approximated by its leading term

    p = C(D-1, K-1) * (1/B)^(K-1)

and the probability of surviving ``T`` cycles is ``(1 - p)^(T - D + 1)``.
Setting that to 1/2 and solving for T gives the paper's Mean Time to
Stall:

    MTS = log(1/2) / log(1 - p) + D

The quantities involved are astronomically small/large (the paper plots
MTS up to 10^16), so everything here is computed in log space via
``lgamma``; :func:`delay_buffer_mts` returns ``math.inf`` when the value
exceeds the float range rather than overflowing.
"""

from __future__ import annotations

import math

_LN2 = math.log(2.0)
_LN10 = math.log(10.0)


def _validate(rows: int, delay: int, banks: int) -> None:
    if rows < 1:
        raise ValueError("rows (K) must be >= 1")
    if delay < 1:
        raise ValueError("delay (D) must be >= 1")
    if banks < 1:
        raise ValueError("banks (B) must be >= 1")


def _log_binomial(n: int, k: int) -> float:
    """log C(n, k); -inf when the coefficient is zero."""
    if k < 0 or k > n:
        return -math.inf
    return (math.lgamma(n + 1) - math.lgamma(k + 1)
            - math.lgamma(n - k + 1))


def log_stall_window_probability(rows: int, delay: int, banks: int) -> float:
    """Natural log of the paper's per-window stall probability ``p``.

    ``p = C(D-1, K-1) * (1/B)^(K-1)``.  Returns ``-inf`` when K-1 > D-1
    (a window physically cannot contain K requests, so no stall).
    """
    _validate(rows, delay, banks)
    log_combinations = _log_binomial(delay - 1, rows - 1)
    if log_combinations == -math.inf:
        return -math.inf
    return log_combinations - (rows - 1) * math.log(banks)


def stall_window_probability(rows: int, delay: int, banks: int) -> float:
    """The per-window stall probability ``p`` itself (may underflow to 0)."""
    log_p = log_stall_window_probability(rows, delay, banks)
    if log_p == -math.inf:
        return 0.0
    # The leading-term approximation can exceed 1 for tiny/degenerate
    # configurations (it over-counts); clamp as a probability.
    return min(1.0, math.exp(log_p))


def log_exact_tail_probability(rows: int, delay: int, banks: int) -> float:
    """Natural log of the exact window-overflow probability.

    ``P(X >= K-1)`` for ``X ~ Binomial(D-1, 1/B)`` — the full binomial
    tail the paper's leading term approximates.  The paper keeps only
    the ``j = K-1`` term *without* the ``(1-1/B)^(D-K)`` survival factor;
    the two errors partially cancel.  We expose the exact value so tests
    can quantify the approximation (and so design tools can use the
    tighter number).  Computed by log-sum-exp over the tail terms, which
    decay geometrically.
    """
    _validate(rows, delay, banks)
    trials = delay - 1
    threshold = rows - 1
    if threshold > trials:
        return -math.inf
    log_p = -math.log(banks)
    log_q = math.log1p(-1.0 / banks) if banks > 1 else -math.inf
    if banks == 1:
        return 0.0  # every request hits the single bank: certain overflow
    terms = []
    for successes in range(threshold, trials + 1):
        term = (_log_binomial(trials, successes)
                + successes * log_p
                + (trials - successes) * log_q)
        terms.append(term)
        # Terms decay once past the mode; stop when negligible.
        if len(terms) > 1 and term < terms[0] - 40.0:
            break
    peak = max(terms)
    return peak + math.log(sum(math.exp(t - peak) for t in terms))


def delay_buffer_mts(rows: int, delay: int, banks: int,
                     tail: str = "leading") -> float:
    """The paper's Mean Time to Stall, in interface cycles.

    ``MTS = ln(1/2) / ln(1 - p) + D``; for the small ``p`` of real
    configurations this is ``ln 2 / p + D``.  ``math.inf`` when no
    window can hold K requests or the value exceeds float range.

    ``tail="leading"`` uses the paper's leading-term ``p`` (default, for
    reproduction); ``tail="exact"`` uses the full binomial tail.
    """
    if tail == "leading":
        log_p = log_stall_window_probability(rows, delay, banks)
    elif tail == "exact":
        log_p = log_exact_tail_probability(rows, delay, banks)
    else:
        raise ValueError(f"tail must be 'leading' or 'exact', got {tail!r}")
    if log_p == -math.inf:
        return math.inf
    if log_p >= 0.0:          # p clamps to 1: stall in the first window
        return float(delay)
    p = math.exp(log_p)
    if p > 1e-12:
        return _LN2 / -math.log1p(-p) + delay
    # Deep tail: ln(1-p) == -p to double precision.
    log_mts = math.log(_LN2) - log_p
    if log_mts > 700.0:       # exp would overflow
        return math.inf
    return math.exp(log_mts) + delay


def log10_delay_buffer_mts(rows: int, delay: int, banks: int) -> float:
    """log10 of the MTS — what Figure 4's y-axis actually plots.

    Stays finite far beyond float range (e.g. K=128, B=64 is ~10^150).
    """
    log_p = log_stall_window_probability(rows, delay, banks)
    if log_p == -math.inf:
        return math.inf
    if log_p >= 0.0:
        return math.log10(delay)
    p = math.exp(log_p)
    if p > 1e-12:
        return math.log10(_LN2 / -math.log1p(-p) + delay)
    return (math.log(_LN2) - log_p) / _LN10


def minimum_rows_for_mts(target_mts: float, delay: int, banks: int,
                         max_rows: int = 4096) -> int:
    """Smallest K achieving at least ``target_mts`` cycles (design helper).

    Raises ``ValueError`` if even ``max_rows`` is insufficient.
    """
    if target_mts <= 0:
        raise ValueError("target_mts must be positive")
    target_log10 = math.log10(target_mts)
    for rows in range(1, max_rows + 1):
        if log10_delay_buffer_mts(rows, delay, banks) >= target_log10:
            return rows
    raise ValueError(
        f"no K <= {max_rows} reaches MTS 10^{target_log10:.1f} "
        f"with D={delay}, B={banks}"
    )
