"""Differential validation of the batch engine's sampled telemetry.

The oracle is :class:`FastStallSimulator` with ``track_occupancy=True``,
which records *exact* post-accept occupancy high-water marks per bank.
On a matched bank sequence the batch engine's telemetry peaks must
agree: bank-queue peaks are tracked exactly in both engines, the
work-conserving engine maintains exact delay-row marks inside its
chunked kernel at *any* stride (DESIGN.md §10), and the strict engine's
delay-row mark is exact whenever the sampling stride is <= the bank
count (every accept gets sampled — DESIGN.md §9).
"""

import pytest

from repro.core import VPNMConfig
from repro.core.exceptions import ConfigurationError
from repro.sim.batchsim import BatchStallSimulator, matched_bank_sequences
from repro.sim.fastsim import FastStallSimulator

GRID = [
    dict(banks=1, bank_latency=7, queue_depth=1, delay_rows=2,
         bus_scaling=1.0),
    dict(banks=4, bank_latency=7, queue_depth=2, delay_rows=4,
         bus_scaling=1.3),
    dict(banks=8, bank_latency=9, queue_depth=4, delay_rows=8,
         bus_scaling=1.3),
]
CYCLES = 3000
SEEDS = [21, 22]


def run_pair(params, strict, stride, idle=0.0):
    """Batch run with telemetry plus the per-lane fastsim oracles."""
    config = VPNMConfig(hash_latency=0, skip_idle_slots=not strict,
                        **params)
    sequences = matched_bank_sequences(config, SEEDS, CYCLES, idle)
    batch = BatchStallSimulator(
        config, SEEDS, stall_cycle_limit=10**9
    ).run(CYCLES, idle_probability=idle, bank_sequences=sequences,
          telemetry_stride=stride)
    oracles = [FastStallSimulator(config, seed=seed).run(
                   CYCLES, idle_probability=idle, track_occupancy=True)
               for seed in SEEDS]
    return batch, oracles


@pytest.mark.parametrize("params", GRID)
@pytest.mark.parametrize("strict", [True, False],
                         ids=["strict", "work-conserving"])
def test_queue_peaks_match_oracle_exactly(params, strict):
    # stride=1 <= banks everywhere in GRID, so even the sampled
    # delay-row mark is exact on the strict engine.
    batch, oracles = run_pair(params, strict, stride=1)
    telemetry = batch.telemetry
    assert telemetry is not None
    expected_queue = [o.occupancy_peaks["queue"] for o in oracles]
    expected_rows = [o.occupancy_peaks["delay_rows"] for o in oracles]
    assert telemetry.per_lane_queue_peak == expected_queue
    assert telemetry.bank_queue_peak == max(expected_queue)
    assert telemetry.per_lane_rows_peak == expected_rows
    assert telemetry.delay_rows_peak == max(expected_rows)


@pytest.mark.parametrize("params", GRID)
def test_sparse_stride_queue_peaks_still_exact(params):
    """Queue peaks are tracked at every accept, not sampled — a sparse
    stride must not change them.  Sampled delay-row marks may only
    undershoot the oracle."""
    batch, oracles = run_pair(params, strict=True, stride=500)
    telemetry = batch.telemetry
    expected_queue = [o.occupancy_peaks["queue"] for o in oracles]
    assert telemetry.per_lane_queue_peak == expected_queue
    for lane, oracle in enumerate(oracles):
        assert (telemetry.per_lane_rows_peak[lane]
                <= oracle.occupancy_peaks["delay_rows"])


@pytest.mark.parametrize("params", GRID)
@pytest.mark.parametrize("stride", [97, 500])
def test_wc_delay_row_marks_exact_at_any_stride(params, stride):
    """The work-conserving engine's delay-row peaks are maintained at
    every accept inside the chunked kernel, not sampled — sparse
    strides must still reproduce the oracle marks exactly."""
    batch, oracles = run_pair(params, strict=False, stride=stride)
    telemetry = batch.telemetry
    assert telemetry.per_lane_rows_peak == [
        o.occupancy_peaks["delay_rows"] for o in oracles]
    assert telemetry.per_lane_queue_peak == [
        o.occupancy_peaks["queue"] for o in oracles]


@pytest.mark.parametrize("strict", [True, False],
                         ids=["strict", "work-conserving"])
def test_stall_reasons_match_counters(strict):
    params = GRID[1]
    batch, _ = run_pair(params, strict, stride=64, idle=0.2)
    reasons = batch.telemetry.stall_reasons
    assert reasons.get("delay_storage", 0) == int(
        batch.delay_storage_stalls.sum())
    assert reasons.get("bank_queue", 0) == int(
        batch.bank_queue_stalls.sum())
    assert sum(reasons.values()) == int(batch.stalls.sum())


def test_series_shape_and_bounds():
    params = GRID[2]
    stride = 250
    batch, _ = run_pair(params, strict=True, stride=stride)
    telemetry = batch.telemetry
    buckets = CYCLES // stride + 1
    assert telemetry.stride == stride
    assert telemetry.cycles == CYCLES
    assert telemetry.lanes == len(SEEDS)
    assert len(telemetry.queue_series) == buckets
    assert len(telemetry.rows_series) == buckets
    assert len(telemetry.bank_pressure) == buckets
    assert all(len(row) == params["banks"]
               for row in telemetry.bank_pressure)
    # Samples never exceed the exact peaks or the structure limits.
    assert max(telemetry.queue_series) <= telemetry.bank_queue_peak
    assert telemetry.bank_queue_peak <= params["queue_depth"]
    assert max(telemetry.rows_series) <= telemetry.delay_rows_peak
    assert telemetry.delay_rows_peak <= params["delay_rows"]


def test_telemetry_off_by_default():
    config = VPNMConfig(hash_latency=0, **GRID[0])
    result = BatchStallSimulator(config, SEEDS).run(500)
    assert result.telemetry is None


def test_stride_must_be_positive():
    config = VPNMConfig(hash_latency=0, **GRID[0])
    sim = BatchStallSimulator(config, SEEDS)
    with pytest.raises(ConfigurationError, match="telemetry_stride"):
        sim.run(500, telemetry_stride=0)
