"""Tests for MTS combination, unit conversion, and Pareto utilities."""

import math

import pytest

from repro.analysis.combine import (
    combined_mts,
    mts_seconds,
    mts_to_human,
    system_mts,
)
from repro.analysis.pareto import ParetoPoint, knee_point, pareto_frontier
from repro.core import VPNMConfig, paper_config


class TestCombinedMTS:
    def test_harmonic_combination(self):
        assert combined_mts(100.0, 100.0) == pytest.approx(50.0)
        assert combined_mts(10.0, 1e12) == pytest.approx(10.0, rel=1e-6)

    def test_infinite_terms_drop_out(self):
        assert combined_mts(math.inf, 500.0) == 500.0
        assert combined_mts(math.inf, math.inf) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            combined_mts()
        with pytest.raises(ValueError):
            combined_mts(0.0)
        with pytest.raises(ValueError):
            combined_mts(-5.0)

    def test_system_mts_below_each_component(self):
        cfg = VPNMConfig(hash_latency=0)
        from repro.analysis.delay_buffer_stall import delay_buffer_mts
        from repro.analysis.markov import bank_queue_mts
        total = system_mts(cfg)
        assert total <= delay_buffer_mts(cfg.delay_rows,
                                         cfg.normalized_delay, cfg.banks)
        assert total <= bank_queue_mts(cfg.banks, cfg.bank_latency,
                                       cfg.queue_depth, cfg.bus_scaling,
                                       scope="system")

    def test_table2_ladder_is_monotone(self):
        """Bigger Table 2 design points must have larger analytical MTS,
        with the big multiplicative steps the paper reports."""
        values = [system_mts(paper_config(i, hash_latency=0))
                  for i in range(4)]
        assert values == sorted(values)
        assert values[-1] / values[0] > 1e6  # paper: 5.12e5 -> 6.5e13


class TestUnits:
    def test_paper_reference_points(self):
        """1 GHz clock: 10^9 cycles = 1 s; 3.6e12 = 1 h; 8.64e13 = 1 day."""
        assert mts_seconds(1e9) == pytest.approx(1.0)
        assert mts_seconds(3.6e12) == pytest.approx(3600.0)
        assert mts_seconds(8.64e13) == pytest.approx(86400.0)

    def test_clock_scaling(self):
        assert mts_seconds(1e9, clock_mhz=500.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mts_seconds(1e9, clock_mhz=0)

    def test_human_rendering(self):
        assert "days" in mts_to_human(8.64e13 * 3)
        assert "hours" in mts_to_human(3.6e12 * 2)
        assert "min" in mts_to_human(1.2e11)
        assert "ms" in mts_to_human(1e6)
        assert "ns" in mts_to_human(100)
        assert "never" in mts_to_human(math.inf)
        assert ">100 years" in mts_to_human(1e25)


class TestPareto:
    def points(self):
        return [
            ParetoPoint(area_mm2=10, mts_cycles=1e6, config="a"),
            ParetoPoint(area_mm2=20, mts_cycles=1e9, config="b"),
            ParetoPoint(area_mm2=20, mts_cycles=1e7, config="c"),   # dominated
            ParetoPoint(area_mm2=30, mts_cycles=1e8, config="d"),   # dominated
            ParetoPoint(area_mm2=40, mts_cycles=1e13, config="e"),
        ]

    def test_dominates(self):
        a = ParetoPoint(10, 1e6)
        b = ParetoPoint(20, 1e6)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_frontier_filters_dominated(self):
        frontier = pareto_frontier(self.points())
        assert [p.config for p in frontier] == ["a", "b", "e"]

    def test_frontier_sorted_by_area(self):
        frontier = pareto_frontier(self.points())
        areas = [p.area_mm2 for p in frontier]
        assert areas == sorted(areas)

    def test_frontier_of_empty(self):
        assert pareto_frontier([]) == []

    def test_knee_point(self):
        frontier = pareto_frontier(self.points())
        knee = knee_point(frontier)
        # b: +3 decades for +10mm2 (0.3/mm2) beats e: +4 for +20 (0.2).
        assert knee.config == "b"

    def test_knee_degenerate_cases(self):
        assert knee_point([]) is None
        only = ParetoPoint(1, 1)
        assert knee_point([only]) is only
