"""ABL1 — is the universal hash load-bearing?

Ablation of the Section 3.2 randomization: the same stride attack
(stride = bank count = 32, the classic banked-memory pathology) against

* a conventional banked controller (low-bit bank select, no latency
  normalization),
* VPNM with the hash ablated to low-bit mapping, and
* full VPNM with the Carter-Wegman mapping,

plus the oracle single-bank attack that upper-bounds the damage if the
hash key ever leaked.
"""

from repro.apps.baselines import ConventionalController
from repro.core import VPNMConfig, VPNMController
from repro.sim.runner import run_workload
from repro.workloads.adversarial import SingleBankAdversary
from repro.workloads.generators import stride_reads, uniform_reads

from _report import report

REQUESTS = 2000


def run_all():
    rows = {}

    conventional = ConventionalController(banks=32, bank_latency=20,
                                          queue_depth=8)
    for request in stride_reads(stride=32, count=REQUESTS):
        conventional.step(request)
    conventional.drain()
    rows["conventional + stride"] = conventional.stats.acceptance_rate

    for label, scheme in [("vpnm/low-bits + stride", "low-bits"),
                          ("vpnm/universal + stride", "carter-wegman")]:
        ctrl = VPNMController(
            VPNMConfig(hash_latency=0, stall_policy="drop",
                       hash_scheme=scheme),
            seed=23,
        )
        result = run_workload(ctrl, stride_reads(stride=32, count=REQUESTS))
        rows[label] = result.accepted / REQUESTS

    # Uniform traffic as the control: everyone handles it.
    ctrl = VPNMController(VPNMConfig(hash_latency=0, stall_policy="drop"),
                          seed=23)
    result = run_workload(ctrl, uniform_reads(count=REQUESTS, seed=1))
    rows["vpnm/universal + uniform"] = result.accepted / REQUESTS

    # Oracle attack: the adversary reads the private mapping.  The pool
    # must exceed D distinct addresses — a smaller pool recycles within
    # the normalized-delay window and the merging queue absorbs it (the
    # oracle then only achieves ~50% damage; see ABL2).
    ctrl = VPNMController(
        VPNMConfig(hash_latency=0, stall_policy="drop", address_bits=20),
        seed=23,
    )
    adversary = SingleBankAdversary(ctrl.mapper, pool_size=512,
                                    search_limit=1 << 20)
    result = run_workload(ctrl, adversary.requests(REQUESTS))
    rows["vpnm/universal + oracle"] = result.accepted / REQUESTS
    return rows


def test_ablation_hashing(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The stride kills low-bit mappings (both controllers)...
    assert rows["conventional + stride"] < 0.15
    assert rows["vpnm/low-bits + stride"] < 0.15
    # ...and the universal hash fully absorbs it.
    assert rows["vpnm/universal + stride"] == 1.0
    assert rows["vpnm/universal + uniform"] == 1.0
    # Only an oracle (leaked key) reduces VPNM to the low-bits fate.
    assert rows["vpnm/universal + oracle"] < 0.15

    text = "\n".join(f"{label:<26} acceptance {value:7.1%}"
                     for label, value in rows.items())
    report("ablation_hashing", text)
