"""C fallback JIT backend: gcc-compiled shared library via ctypes.

When numba is absent (it is an extras-only dependency) but a C
compiler is on PATH, the "jit" kernel can still run compiled code: the
loop kernels in :mod:`pyloops` are transcribed line-for-line into C
below, built once per source-hash with ``cc -O2 -shared -fPIC`` into a
cache directory, and bound through :mod:`ctypes`.  Because the ABI is
flat int64/int32 arrays and scalars (DESIGN.md §13), the transcription
is mechanical and the bit-identity contract carries over unchanged —
the differential suite pins it against the NumPy engines either way.

The backend is best-effort by design: any failure (no compiler,
read-only cache, dlopen error) surfaces as ``None`` from
:func:`load`, and the resolution layer in ``kernels/__init__`` falls
back to the next backend.  Set ``REPRO_KERNEL_CACHE`` to relocate the
build directory (CI uses a workspace path).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>

int run_stall_lane(
    const int32_t *seq, int64_t cycles, int64_t banks,
    int64_t num, int64_t den, int64_t latency, int64_t delay,
    int64_t queue_limit, int64_t row_limit,
    int64_t strict, int64_t stride, int64_t stall_cap,
    int64_t *queue, int64_t *rows, int64_t *free_at,
    int64_t *enqueued, int64_t *ready, int64_t *release,
    int64_t *stall_out, int64_t *peak_q, int64_t *peak_r,
    int64_t *queue_series, int64_t *rows_series, int64_t *pressure,
    int64_t *counts)
{
    int64_t head = 0, size = 0, slots_consumed = 0;
    int64_t accepted = 0, ds_stalls = 0, bq_stalls = 0, nstalls = 0;

    for (int64_t now = 0; now < cycles; now++) {
        int64_t ring_slot = now % delay;
        int64_t freed = release[ring_slot];
        release[ring_slot] = -1;

        int64_t bank = seq[now];
        if (bank >= 0) {
            if (rows[bank] >= row_limit) {
                ds_stalls++;
                if (nstalls < stall_cap) stall_out[nstalls] = now;
                nstalls++;
            } else {
                int64_t busy = free_at[bank] > slots_consumed ? 1 : 0;
                if (queue[bank] + busy >= queue_limit) {
                    bq_stalls++;
                    if (nstalls < stall_cap) stall_out[nstalls] = now;
                    nstalls++;
                } else {
                    accepted++;
                    rows[bank]++;
                    queue[bank]++;
                    if (stride > 0) {
                        if (queue[bank] > peak_q[bank])
                            peak_q[bank] = queue[bank];
                        if (rows[bank] > peak_r[bank])
                            peak_r[bank] = rows[bank];
                    }
                    release[ring_slot] = bank;
                    if (strict == 0 && enqueued[bank] == 0) {
                        enqueued[bank] = 1;
                        ready[(head + size) % banks] = bank;
                        size++;
                    }
                }
            }
        }

        if (stride > 0 && now % stride == 0) {
            int64_t bucket = now / stride;
            int64_t qmax = 0, rmax = 0;
            for (int64_t b = 0; b < banks; b++) {
                if (queue[b] > qmax) qmax = queue[b];
                if (rows[b] > rmax) rmax = rows[b];
                if (queue[b] > pressure[bucket * banks + b])
                    pressure[bucket * banks + b] = queue[b];
            }
            if (qmax > queue_series[bucket]) queue_series[bucket] = qmax;
            if (rmax > rows_series[bucket]) rows_series[bucket] = rmax;
        }

        if (freed >= 0) rows[freed]--;

        int64_t target = ((now + 1) * num) / den;
        while (slots_consumed < target) {
            int64_t slot = slots_consumed;
            slots_consumed++;
            if (strict == 1) {
                int64_t b = slot % banks;
                if (queue[b] > 0 && free_at[b] <= slot) {
                    queue[b]--;
                    free_at[b] = slot + latency;
                }
            } else {
                int64_t scan = size;
                for (int64_t k = 0; k < scan; k++) {
                    int64_t b = ready[head];
                    head = (head + 1) % banks;
                    size--;
                    if (queue[b] == 0) { enqueued[b] = 0; continue; }
                    if (free_at[b] <= slot) {
                        queue[b]--;
                        free_at[b] = slot + latency;
                        if (queue[b] > 0) {
                            ready[(head + size) % banks] = b;
                            size++;
                        } else {
                            enqueued[b] = 0;
                        }
                        break;
                    }
                    ready[(head + size) % banks] = b;
                    size++;
                }
            }
        }
    }

    counts[0] = accepted;
    counts[1] = ds_stalls;
    counts[2] = bq_stalls;
    counts[3] = nstalls;
    return 0;
}

int run_merge_events(
    const int32_t *ev_bank, const int32_t *ev_key, int64_t n,
    int64_t banks, int64_t queue_cap,
    int64_t num, int64_t den, int64_t latency, int64_t delay,
    int64_t queue_limit, int64_t row_limit, int64_t max_count,
    int64_t merge_on, int64_t strict,
    int64_t *cam_row, int64_t *rows_used,
    int64_t *row_counter, int64_t *row_pending,
    int64_t *row_bank, int64_t *row_key, int64_t *free_stack,
    int64_t *queues, int64_t *q_head, int64_t *q_size,
    int64_t *bank_free_at, int64_t *enqueued, int64_t *ready,
    int64_t *release, int64_t *state, int64_t *counts)
{
    int64_t now = state[0];
    int64_t slots_consumed = state[1];
    int64_t ready_head = state[2];
    int64_t ready_size = state[3];
    int64_t free_top = state[4];

    for (int64_t i = 0; i < n; i++) {
        int64_t ring_slot = now % delay;
        int64_t freed = release[ring_slot];
        release[ring_slot] = -1;

        int64_t bank = ev_bank[i];
        if (bank >= 0) {
            counts[0]++;
            int64_t key = ev_key[i];
            int64_t hit = merge_on == 1 ? cam_row[key] : -1;
            if (hit >= 0) {
                if (row_counter[hit] >= max_count) {
                    counts[3]++;
                } else {
                    row_counter[hit]++;
                    counts[1]++;
                    counts[2]++;
                    release[ring_slot] = hit;
                }
            } else if (rows_used[bank] >= row_limit) {
                counts[3]++;
            } else {
                int64_t busy = bank_free_at[bank] > slots_consumed ? 1 : 0;
                if (q_size[bank] + busy >= queue_limit) {
                    counts[4]++;
                } else {
                    free_top--;
                    int64_t row = free_stack[free_top];
                    row_counter[row] = 1;
                    row_pending[row] = 1;
                    row_bank[row] = bank;
                    row_key[row] = key;
                    rows_used[bank]++;
                    if (merge_on == 1) cam_row[key] = row;
                    queues[bank * queue_cap
                           + (q_head[bank] + q_size[bank]) % queue_cap] = row;
                    q_size[bank]++;
                    counts[1]++;
                    release[ring_slot] = row;
                    if (enqueued[bank] == 0) {
                        enqueued[bank] = 1;
                        ready[(ready_head + ready_size) % banks] = bank;
                        ready_size++;
                    }
                }
            }
        }

        if (freed >= 0) {
            row_counter[freed]--;
            if (row_counter[freed] == 0 && row_pending[freed] == 0) {
                rows_used[row_bank[freed]]--;
                if (merge_on == 1) cam_row[row_key[freed]] = -1;
                free_stack[free_top] = freed;
                free_top++;
            }
        }

        int64_t target = ((now + 1) * num) / den;
        while (slots_consumed < target) {
            int64_t slot = slots_consumed;
            slots_consumed++;
            if (strict == 1) {
                int64_t b = slot % banks;
                if (q_size[b] > 0 && bank_free_at[b] <= slot) {
                    int64_t row = queues[b * queue_cap + q_head[b]];
                    q_head[b] = (q_head[b] + 1) % queue_cap;
                    q_size[b]--;
                    row_pending[row] = 0;
                    bank_free_at[b] = slot + latency;
                    counts[5]++;
                    if (row_counter[row] == 0) {
                        rows_used[b]--;
                        if (merge_on == 1) cam_row[row_key[row]] = -1;
                        free_stack[free_top] = row;
                        free_top++;
                    }
                }
            } else {
                int64_t scan = ready_size;
                for (int64_t k = 0; k < scan; k++) {
                    int64_t b = ready[ready_head];
                    ready_head = (ready_head + 1) % banks;
                    ready_size--;
                    if (q_size[b] == 0) { enqueued[b] = 0; continue; }
                    if (bank_free_at[b] <= slot) {
                        int64_t row = queues[b * queue_cap + q_head[b]];
                        q_head[b] = (q_head[b] + 1) % queue_cap;
                        q_size[b]--;
                        row_pending[row] = 0;
                        bank_free_at[b] = slot + latency;
                        counts[5]++;
                        if (row_counter[row] == 0) {
                            rows_used[b]--;
                            if (merge_on == 1) cam_row[row_key[row]] = -1;
                            free_stack[free_top] = row;
                            free_top++;
                        }
                        if (q_size[b] > 0) {
                            ready[(ready_head + ready_size) % banks] = b;
                            ready_size++;
                        } else {
                            enqueued[b] = 0;
                        }
                        break;
                    }
                    ready[(ready_head + ready_size) % banks] = b;
                    ready_size++;
                }
            }
        }

        now++;
    }

    state[0] = now;
    state[1] = slots_consumed;
    state[2] = ready_head;
    state[3] = ready_size;
    state[4] = free_top;
    return 0;
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)


def _cache_dir() -> str:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro-kernels")


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build() -> str:
    """Compile (once per source hash) and return the .so path."""
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        src = os.path.join(tmp, "kernels.c")
        out = os.path.join(tmp, "kernels.so")
        with open(src, "w") as fh:
            fh.write(_C_SOURCE)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", out, src],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            raise RuntimeError(f"kernel compile failed: {proc.stderr[-500:]}")
        # Atomic within one filesystem: concurrent builders race benignly.
        os.replace(out, lib_path)
    return lib_path


def _i64(array: np.ndarray):
    return array.ctypes.data_as(_I64)


def _i32(array: np.ndarray):
    return array.ctypes.data_as(_I32)


class _CKernels:
    """ctypes bindings exposing the pyloops signatures exactly."""

    backend = "cc"

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.run_stall_lane.restype = ctypes.c_int
        lib.run_merge_events.restype = ctypes.c_int

    def run_stall_lane(self, seq, num, den, latency, delay, queue_limit,
                       row_limit, strict, stride, stall_cap,
                       queue, rows, free_at, enqueued, ready, release,
                       stall_out, peak_q, peak_r,
                       queue_series, rows_series, pressure, counts):
        return self._lib.run_stall_lane(
            _i32(seq), ctypes.c_int64(seq.shape[0]),
            ctypes.c_int64(queue.shape[0]),
            ctypes.c_int64(num), ctypes.c_int64(den),
            ctypes.c_int64(latency), ctypes.c_int64(delay),
            ctypes.c_int64(queue_limit), ctypes.c_int64(row_limit),
            ctypes.c_int64(strict), ctypes.c_int64(stride),
            ctypes.c_int64(stall_cap),
            _i64(queue), _i64(rows), _i64(free_at), _i64(enqueued),
            _i64(ready), _i64(release), _i64(stall_out),
            _i64(peak_q), _i64(peak_r),
            _i64(queue_series), _i64(rows_series), _i64(pressure),
            _i64(counts))

    def run_merge_events(self, ev_bank, ev_key, num, den, latency, delay,
                         queue_limit, row_limit, max_count, merge_on, strict,
                         cam_row, rows_used, row_counter, row_pending,
                         row_bank, row_key, free_stack,
                         queues, q_head, q_size, bank_free_at,
                         enqueued, ready, release, state, counts):
        return self._lib.run_merge_events(
            _i32(ev_bank), _i32(ev_key),
            ctypes.c_int64(ev_bank.shape[0]),
            ctypes.c_int64(rows_used.shape[0]),
            ctypes.c_int64(queues.shape[1]),
            ctypes.c_int64(num), ctypes.c_int64(den),
            ctypes.c_int64(latency), ctypes.c_int64(delay),
            ctypes.c_int64(queue_limit), ctypes.c_int64(row_limit),
            ctypes.c_int64(max_count), ctypes.c_int64(merge_on),
            ctypes.c_int64(strict),
            _i64(cam_row), _i64(rows_used), _i64(row_counter),
            _i64(row_pending), _i64(row_bank), _i64(row_key),
            _i64(free_stack), _i64(queues), _i64(q_head), _i64(q_size),
            _i64(bank_free_at), _i64(enqueued), _i64(ready),
            _i64(release), _i64(state), _i64(counts))


def load() -> Optional[_CKernels]:
    """Build+bind the C kernels; ``None`` (never raises) when impossible."""
    try:
        return _CKernels(ctypes.CDLL(_build()))
    except Exception:
        return None
