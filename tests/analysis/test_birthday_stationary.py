"""Tests for the birthday-paradox helpers and the quasi-stationary
backlog distribution."""

import math

import pytest

from repro.analysis.birthday import (
    accesses_for_collision_probability,
    collision_probability,
    expected_accesses_to_first_collision,
    no_collision_probability,
    simulate_first_collision,
    sqrt_approximation,
)
from repro.analysis.markov import BankQueueChain
from repro.core import VPNMConfig
from repro.sim.fastsim import FastStallSimulator


class TestBirthday:
    def test_classic_birthday_number(self):
        """23 people / 365 days: the textbook anchor."""
        assert collision_probability(365, 23) > 0.5
        assert collision_probability(365, 22) < 0.5
        assert accesses_for_collision_probability(365) == 23

    def test_degenerate_cases(self):
        assert no_collision_probability(10, 0) == 1.0
        assert no_collision_probability(10, 1) == 1.0
        assert no_collision_probability(10, 11) == 0.0  # pigeonhole
        assert collision_probability(1, 2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            no_collision_probability(0, 1)
        with pytest.raises(ValueError):
            no_collision_probability(10, -1)
        with pytest.raises(ValueError):
            expected_accesses_to_first_collision(0)
        with pytest.raises(ValueError):
            accesses_for_collision_probability(10, 0.0)
        with pytest.raises(ValueError):
            simulate_first_collision(10, trials=0)

    def test_expectation_matches_sqrt_asymptotics(self):
        """The paper's O(sqrt(B)) claim: E[N] ~ sqrt(pi*B/2) + 2/3."""
        for banks in (32, 64, 512):
            exact = expected_accesses_to_first_collision(banks)
            approx = sqrt_approximation(banks)
            assert abs(exact / approx - 1) < 0.03, banks

    def test_expectation_matches_simulation(self):
        for banks in (16, 64):
            exact = expected_accesses_to_first_collision(banks)
            simulated = simulate_first_collision(banks, trials=4000, seed=1)
            assert abs(simulated / exact - 1) < 0.05, banks

    def test_paper_motivating_numbers(self):
        """For the paper's B=32: an unqueued system stalls within ~8
        accesses on average — hence the queues."""
        expectation = expected_accesses_to_first_collision(32)
        assert 6 < expectation < 9
        # ... while the queued system's MTS is ~10^5+ cycles (Figure 6).

    def test_monotone_in_accesses(self):
        values = [collision_probability(64, n) for n in range(0, 40)]
        assert values == sorted(values)


class TestQuasiStationaryDistribution:
    def test_is_a_distribution(self):
        chain = BankQueueChain(banks=8, bank_latency=4, queue_depth=3,
                               bus_scaling=1.3)
        dist = chain.quasi_stationary_distribution()
        assert dist.shape[0] == 3 * 4 + 1
        assert dist.min() >= 0.0
        assert abs(dist.sum() - 1.0) < 1e-9

    def test_light_load_concentrates_near_idle(self):
        chain = BankQueueChain(banks=64, bank_latency=4, queue_depth=4,
                               bus_scaling=1.3)
        dist = chain.quasi_stationary_distribution()
        assert dist[:5].sum() > 0.9

    def test_mean_backlog_grows_with_load(self):
        light = BankQueueChain(32, 8, 4, 1.3).mean_backlog()
        heavy = BankQueueChain(8, 8, 4, 1.3).mean_backlog()
        assert heavy > light * 2

    @pytest.mark.parametrize("params", [
        dict(banks=16, bank_latency=8, queue_depth=4, bus_scaling=1.3),
        dict(banks=8, bank_latency=6, queue_depth=3, bus_scaling=1.3),
    ])
    def test_matches_simulated_backlog_with_bus_headroom(self, params):
        """With R > 1 (bus not saturated) the chain's quasi-stationary
        mean backlog tracks the simulator within ~35%."""
        config = VPNMConfig(delay_rows=4096, hash_latency=0, **params)
        result = FastStallSimulator(config, seed=13).run(
            300_000, track_backlog=True
        )
        histogram = result.backlog_histogram
        total = sum(histogram.values())
        simulated_mean = sum(k * v for k, v in histogram.items()) / total
        chain = BankQueueChain(**params)
        predicted = chain.mean_backlog()
        assert abs(simulated_mean / predicted - 1) < 0.35, (
            simulated_mean, predicted
        )

    def test_saturated_bus_exceeds_chain_prediction(self):
        """At R=1.0 with full-rate traffic the *bus* is 100% utilized;
        bus queueing adds backlog the per-bank chain does not model —
        the quantitative case for R > 1 (paper Section 4)."""
        params = dict(banks=8, bank_latency=4, queue_depth=4,
                      bus_scaling=1.0)
        config = VPNMConfig(delay_rows=4096, hash_latency=0, **params)
        result = FastStallSimulator(config, seed=13).run(
            300_000, track_backlog=True
        )
        histogram = result.backlog_histogram
        total = sum(histogram.values())
        simulated_mean = sum(k * v for k, v in histogram.items()) / total
        predicted = BankQueueChain(**params).mean_backlog()
        assert simulated_mean > predicted * 1.5
