"""Tests for longest-prefix-match forwarding on VPNM."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lpm import MultibitTrie, Route, VPNMLPMEngine
from repro.core import VPNMConfig, VPNMController


def make_engine(trie, **cfg):
    params = dict(banks=32, queue_depth=8, delay_rows=32, hash_latency=0)
    params.update(cfg)
    engine = VPNMLPMEngine(trie, VPNMController(VPNMConfig(**params),
                                                seed=21))
    engine.load_table()
    return engine


def ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


class TestRoute:
    def test_validation(self):
        with pytest.raises(ValueError):
            Route(prefix=0, length=33, next_hop=1)
        with pytest.raises(ValueError):
            Route(prefix=1 << 33, length=8, next_hop=1)
        with pytest.raises(ValueError):
            # bits set below the prefix length
            Route(prefix=ip(10, 0, 0, 1), length=8, next_hop=1)

    def test_host_route_allows_all_bits(self):
        Route(prefix=ip(10, 1, 2, 3), length=32, next_hop=1)


class TestMultibitTrie:
    def test_strides_must_sum_to_32(self):
        with pytest.raises(ValueError):
            MultibitTrie(strides=(8, 8, 8))
        with pytest.raises(ValueError):
            MultibitTrie(strides=(8, 0, 16, 8))

    def test_basic_lpm_semantics(self):
        trie = MultibitTrie.from_routes([
            Route(ip(10, 0, 0, 0), 8, next_hop=100),
            Route(ip(10, 1, 0, 0), 16, next_hop=200),
            Route(ip(10, 1, 2, 0), 24, next_hop=300),
        ])
        assert trie.lookup(ip(10, 9, 9, 9)) == 100
        assert trie.lookup(ip(10, 1, 9, 9)) == 200
        assert trie.lookup(ip(10, 1, 2, 9)) == 300
        assert trie.lookup(ip(11, 0, 0, 0)) is None

    def test_default_route(self):
        trie = MultibitTrie.from_routes([
            Route(0, 0, next_hop=1),
            Route(ip(192, 168, 0, 0), 16, next_hop=2),
        ])
        assert trie.lookup(ip(8, 8, 8, 8)) == 1
        assert trie.lookup(ip(192, 168, 5, 5)) == 2

    def test_mid_stride_prefix_expansion(self):
        # /12 falls inside the second 8-bit stride.
        trie = MultibitTrie.from_routes([
            Route(ip(10, 16, 0, 0), 12, next_hop=7),
        ])
        assert trie.lookup(ip(10, 16, 1, 1)) == 7
        assert trie.lookup(ip(10, 31, 255, 255)) == 7   # still inside /12
        assert trie.lookup(ip(10, 32, 0, 0)) is None    # outside

    def test_longer_prefix_wins_regardless_of_insert_order(self):
        routes = [
            Route(ip(10, 16, 0, 0), 12, next_hop=7),
            Route(ip(10, 20, 0, 0), 16, next_hop=8),
        ]
        for ordering in (routes, routes[::-1]):
            trie = MultibitTrie.from_routes(ordering)
            assert trie.lookup(ip(10, 20, 1, 1)) == 8
            assert trie.lookup(ip(10, 21, 1, 1)) == 7

    def test_host_route(self):
        trie = MultibitTrie.from_routes([
            Route(ip(1, 2, 3, 4), 32, next_hop=9),
            Route(ip(1, 2, 3, 0), 24, next_hop=5),
        ])
        assert trie.lookup(ip(1, 2, 3, 4)) == 9
        assert trie.lookup(ip(1, 2, 3, 5)) == 5

    def test_alternative_strides(self):
        for strides in [(16, 8, 8), (8, 12, 12), (4,) * 8]:
            trie = MultibitTrie.from_routes([
                Route(ip(10, 0, 0, 0), 8, next_hop=1),
                Route(ip(10, 1, 0, 0), 16, next_hop=2),
            ], strides=strides)
            assert trie.lookup(ip(10, 1, 1, 1)) == 2
            assert trie.lookup(ip(10, 2, 1, 1)) == 1

    def test_lookup_rejects_wide_address(self):
        with pytest.raises(ValueError):
            MultibitTrie().lookup(1 << 32)

    @given(
        seed=st.integers(0, 10_000),
        route_count=st.integers(1, 60),
        strides=st.sampled_from([(8, 8, 8, 8), (16, 8, 8), (12, 12, 8)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_implementation(self, seed, route_count,
                                              strides):
        """Property: trie lookup == brute-force longest matching prefix."""
        rng = random.Random(seed)
        routes = []
        for hop, _ in enumerate(range(route_count)):
            length = rng.choice([0, 4, 8, 12, 16, 20, 24, 28, 32])
            prefix = rng.getrandbits(32)
            prefix &= ~((1 << (32 - length)) - 1) if length < 32 else 0xFFFFFFFF
            routes.append(Route(prefix, length, next_hop=hop + 1))
        # Deduplicate identical (prefix, length): keep the longest-hop
        # deterministic winner to keep the oracle unambiguous.
        unique = {}
        for route in routes:
            unique[(route.prefix, route.length)] = route
        routes = list(unique.values())
        trie = MultibitTrie.from_routes(routes, strides=strides)

        def reference(address):
            best, best_len = None, -1
            for route in routes:
                mask = (0xFFFFFFFF << (32 - route.length)) & 0xFFFFFFFF \
                    if route.length else 0
                if (address & mask) == route.prefix and route.length > best_len:
                    best, best_len = route.next_hop, route.length
            return best

        for _ in range(50):
            address = rng.getrandbits(32)
            assert trie.lookup(address) == reference(address)


class TestVPNMLPMEngine:
    def small_table(self):
        return MultibitTrie.from_routes([
            Route(0, 0, next_hop=1),
            Route(ip(10, 0, 0, 0), 8, next_hop=10),
            Route(ip(10, 1, 0, 0), 16, next_hop=11),
            Route(ip(10, 1, 2, 0), 24, next_hop=12),
            Route(ip(10, 1, 2, 3), 32, next_hop=13),
            Route(ip(192, 168, 0, 0), 16, next_hop=20),
        ])

    def test_requires_load(self):
        engine = VPNMLPMEngine(self.small_table(),
                               VPNMController(VPNMConfig(hash_latency=0)))
        with pytest.raises(RuntimeError):
            engine.submit(0)

    def test_engine_matches_functional_trie(self):
        trie = self.small_table()
        engine = make_engine(trie)
        rng = random.Random(5)
        addresses = ([ip(10, 1, 2, 3), ip(10, 1, 2, 4), ip(10, 1, 9, 9),
                      ip(10, 9, 9, 9), ip(192, 168, 1, 1), ip(8, 8, 8, 8)]
                     + [rng.getrandbits(32) for _ in range(50)])
        results = engine.lookup_batch(addresses)
        assert [r.next_hop for r in results] == [
            trie.lookup(a) for a in addresses
        ]

    def test_no_stalls_at_paper_design_point(self):
        engine = make_engine(self.small_table())
        rng = random.Random(6)
        engine.lookup_batch([rng.getrandbits(32) for _ in range(100)])
        assert engine.controller.stats.stalls == 0

    def test_levels_visited_bounded_by_strides(self):
        engine = make_engine(self.small_table())
        results = engine.lookup_batch([ip(10, 1, 2, 3), ip(8, 8, 8, 8)])
        deep, shallow = results
        assert deep.levels_visited == 4     # host route: walks all levels
        assert shallow.levels_visited == 1  # default route: root only

    def test_pipelining_sustains_high_issue_rate(self):
        """With many lookups in flight the engine approaches one memory
        request per cycle, i.e. ~1/levels lookups per cycle."""
        trie = self.small_table()
        engine = make_engine(trie)
        rng = random.Random(7)
        # Addresses under 10.1.2/24 walk all 4 levels.
        engine.lookup_batch([ip(10, 1, 2, rng.randrange(256))
                             for _ in range(400)])
        rate = engine.lookups_per_cycle()
        assert rate > 1 / 4 * 0.6  # within 40% of the 4-level bound

    def test_hot_route_lookups_merge(self):
        """Identical concurrent lookups share delay-storage rows."""
        engine = make_engine(self.small_table())
        engine.lookup_batch([ip(10, 1, 2, 3)] * 50)
        assert engine.controller.stats.reads_merged > 0

    def test_load_through_memory_path(self):
        trie = MultibitTrie.from_routes([Route(ip(10, 0, 0, 0), 8, 1)])
        engine = VPNMLPMEngine(
            trie, VPNMController(VPNMConfig(hash_latency=0), seed=3)
        )
        written = engine.load_table(through_memory=True)
        assert written > 0
        (result,) = engine.lookup_batch([ip(10, 5, 5, 5)])
        assert result.next_hop == 1

    def test_address_space_check(self):
        trie = self.small_table()
        with pytest.raises(ValueError):
            VPNMLPMEngine(trie, VPNMController(
                VPNMConfig(address_bits=8, hash_latency=0)
            ))
