"""Hardware overhead model (paper Section 5.3).

The paper built an overhead tool on Cacti 3.0 plus a synthesized Verilog
model at 0.13 µm.  We replace it with an analytical model **calibrated by
least squares to the paper's own published outputs**: the 0.15 mm²
reference controller (L=20, K=24, Q=12) and the four Table 2 design
points (area and energy).  The model reproduces those anchors within a
few percent and — more importantly — their *scaling*, which is what the
Figure 7 Pareto sweep needs.

- :mod:`~repro.hardware.bits` — exact bit counts of each structure in a
  bank controller (from the Figure 3 geometry).
- :mod:`~repro.hardware.calibration` — the anchor data and the fits.
- :mod:`~repro.hardware.model` — area/energy queries for a configuration.
- :mod:`~repro.hardware.sweep` — the design-space sweep driving Figure 7
  and Table 2.
"""

from repro.hardware.bits import ControllerBits, controller_bits
from repro.hardware.calibration import (
    AREA_ANCHORS,
    ENERGY_ANCHORS,
    AreaFit,
    EnergyFit,
    fit_area_model,
    fit_energy_model,
)
from repro.hardware.model import HardwareModel
from repro.hardware.sweep import DesignPoint, design_sweep, table2_points

__all__ = [
    "AREA_ANCHORS",
    "AreaFit",
    "ControllerBits",
    "DesignPoint",
    "ENERGY_ANCHORS",
    "EnergyFit",
    "HardwareModel",
    "controller_bits",
    "design_sweep",
    "fit_area_model",
    "fit_energy_model",
    "table2_points",
]
