"""System-level MTS: combining the two stall mechanisms.

The delay storage buffer (Section 5.1) and the bank access queue
(Section 5.2) stall independently to first order, so the system's stall
*rate* is the sum of the two rates and

    MTS_system = 1 / (1/MTS_delay_buffer + 1/MTS_bank_queue)

In practice one mechanism dominates by orders of magnitude at any given
design point (the paper sizes K ≈ 2Q so the two are comparable), but the
harmonic combination handles every regime.  The write buffer's stall
rate "does not dominate the overall stall" (Section 4.3) because it is
sized at Q/2 for at most the write fraction of traffic, and is omitted
from the combination exactly as the paper omits it.
"""

from __future__ import annotations

import math

from repro.analysis.delay_buffer_stall import delay_buffer_mts
from repro.analysis.markov import bank_queue_mts
from repro.core.config import VPNMConfig


def combined_mts(*mts_values: float) -> float:
    """Harmonic combination of independent MTS values."""
    if not mts_values:
        raise ValueError("need at least one MTS value")
    total_rate = 0.0
    for value in mts_values:
        if value <= 0:
            raise ValueError(f"MTS values must be positive, got {value}")
        if value != math.inf:
            total_rate += 1.0 / value
    return math.inf if total_rate == 0.0 else 1.0 / total_rate


def system_mts(config: VPNMConfig, kind: str = "median") -> float:
    """Analytical MTS of a full configuration, in interface cycles."""
    buffer_mts = delay_buffer_mts(
        rows=config.delay_rows,
        delay=config.normalized_delay,
        banks=config.banks,
    )
    queue_mts = bank_queue_mts(
        banks=config.banks,
        bank_latency=config.bank_latency,
        queue_depth=config.queue_depth,
        bus_scaling=config.bus_scaling,
        kind=kind,
        scope="system",  # the Section 5.1 term is system-wide; match units
    )
    return combined_mts(buffer_mts, queue_mts)


def mts_seconds(mts_cycles: float, clock_mhz: float = 1000.0) -> float:
    """Convert an MTS in interface cycles to seconds at a given clock.

    The paper's reference points use "a very aggressive bus transaction
    speed of 1 GHz": 10^9 cycles = 1 s, 3.6x10^12 = 1 hour,
    8.64x10^13 = 1 day.
    """
    if clock_mhz <= 0:
        raise ValueError("clock must be positive")
    return mts_cycles / (clock_mhz * 1e6)


def mts_to_human(mts_cycles: float, clock_mhz: float = 1000.0) -> str:
    """Render an MTS as the paper does ('one stall every ~N <unit>')."""
    if mts_cycles == math.inf:
        return "never (beyond float range)"
    seconds = mts_seconds(mts_cycles, clock_mhz)
    if seconds > 86400.0 * 365 * 100:
        return "effectively never (>100 years)"
    for limit, divisor, unit in (
        (1e-3, 1e-9, "ns"),
        (1.0, 1e-3, "ms"),
        (60.0, 1.0, "s"),
        (3600.0, 60.0, "min"),
        (86400.0, 3600.0, "hours"),
        (math.inf, 86400.0, "days"),
    ):
        if seconds < limit:
            return f"one stall every {seconds / divisor:.2f} {unit}"
    raise AssertionError("unreachable")
