"""SEC5.4.2 — TCP reassembly throughput on VPNM.

Measures the cycle cost of reassembling adversarially reordered TCP
traffic through the full memory path.  The paper's accounting: five DRAM
accesses per 64-byte chunk, so a 400 MHz request rate sustains
(400 MHz / 5) * 64 B = 40 Gbps.  We assert the measured access budget is
exactly 5 per chunk and the throughput lands near the claim (drain
overhead on a finite trace costs a few percent).
"""

from repro.apps.reassembly import VPNMReassembler
from repro.core import VPNMConfig, VPNMController
from repro.workloads.packets import SyntheticFlow, tcp_segment_stream

from _report import report

FLOWS = 64
BYTES_PER_FLOW = 64 * 6  # 6 chunks per flow


def run_engine():
    flows = [SyntheticFlow(connection=i,
                           data=bytes([i % 251]) * BYTES_PER_FLOW, mss=64)
             for i in range(FLOWS)]
    stream = tcp_segment_stream(flows, reorder_window=6, seed=11)
    engine = VPNMReassembler(
        VPNMController(VPNMConfig(banks=32, queue_depth=8, delay_rows=32,
                                  hash_latency=0), seed=17)
    )
    for segment in stream:
        engine.push(segment)
    engine.finish()
    return engine, flows


def test_reassembly_throughput(benchmark):
    engine, flows = benchmark.pedantic(run_engine, rounds=1, iterations=1)

    # Functional: every stream reconstructed despite reordering.
    for flow in flows:
        assert engine.assembler.stream(flow.connection) == flow.data

    # The paper's access budget, exactly.
    assert engine.stats.accesses_per_chunk() == 5.0

    # Throughput at a 400 MHz request rate: paper claims 40 Gbps; the
    # finite trace pays drain overhead, so accept the 30-41 band.
    rate = engine.throughput_gbps(clock_mhz=400.0)
    assert 30.0 < rate <= 41.0

    # Scanner staging SRAM: same scale as the paper's 72 KB at the
    # paper's D=960 configuration.
    from repro.core import paper_config
    staging = VPNMReassembler(
        VPNMController(paper_config(2, hash_latency=0))
    ).scanner_sram_bytes(line_rate_gbps=40.0, clock_mhz=400.0)
    assert 20 * 1024 < staging < 100 * 1024

    text = (
        f"flows: {FLOWS}   segments: {engine.stats.segments}   "
        f"chunks: {engine.stats.chunks}\n"
        f"DRAM accesses: {engine.stats.dram_accesses} "
        f"({engine.stats.accesses_per_chunk():.2f}/chunk; paper: 5)\n"
        f"stalls: {engine.stats.stalls}\n"
        f"throughput @400 MHz: {rate:.1f} gbps (paper: 40)\n"
        f"scanner SRAM at D=960: {staging / 1024:.0f} KB (paper: 72 KB)"
    )
    report("reassembly_throughput", text)
