#!/usr/bin/env python
"""Quickstart: the virtual pipeline in a dozen lines.

Creates a paper-default controller (32 banks, L=20, Q=8, K=32, R=1.3),
issues a few reads and writes, and shows the two properties that define
VPNM: every read completes at *exactly* D cycles, and redundant reads
are merged into one DRAM access.

Run:  python examples/quickstart.py
"""

from repro import VPNMConfig, VPNMController

config = VPNMConfig()           # the paper's running example
ctrl = VPNMController(config, seed=2006)

print(f"banks B={config.banks}  latency L={config.bank_latency}  "
      f"queue Q={config.queue_depth}  rows K={config.delay_rows}")
print(f"normalized delay D = {config.normalized_delay} cycles "
      f"({ctrl.delay_ns():.0f} ns at 1 GHz)\n")

# Write three values, then read them back (plus a redundant read).
for address, value in [(0xA11CE, b"alpha"), (0xB0B, b"beta"),
                       (0xCAFE, b"gamma")]:
    ctrl.write(address, value)
ctrl.run_idle(40)  # let the writes reach DRAM

replies = []
for tag, address in [("r1", 0xA11CE), ("r2", 0xB0B), ("r3", 0xCAFE),
                     ("r3-again", 0xCAFE)]:
    result = ctrl.read(address, tag=tag)
    assert result.accepted
    replies.extend(result.replies)
replies.extend(ctrl.drain())

print("tag        data      latency")
for reply in replies:
    print(f"{reply.tag:<10} {str(reply.data):<9} {reply.latency} cycles")

assert all(r.latency == config.normalized_delay for r in replies)
print("\nevery reply arrived at exactly t + D  [OK]")

merged = ctrl.stats.reads_merged
accesses = ctrl.device.total_accesses()
print(f"4 reads issued, {merged} merged -> "
      f"{accesses - 3} DRAM read accesses for 4 replies  [merging OK]")
print("\ncontroller stats:")
print(ctrl.stats.summary())
